// Tests for the concurrent sharded detection runtime (runtime/):
// the SPSC ring's boundary behavior, the runtime's serial-equivalence and
// self-determinism guarantees, backpressure accounting, and the
// alert/metrics plumbing that makes N shards look like one engine.

#include "runtime/runtime.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <numeric>
#include <set>
#include <string>
#include <thread>

#include "runtime/affinity.h"

#include "obs/metrics.h"
#include "sim/testbed.h"

namespace infilter::runtime {
namespace {

// -- SpscRing --

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  SpscRing<int> ring(3);
  EXPECT_EQ(ring.capacity(), 4u);
  SpscRing<int> big(1000);
  EXPECT_EQ(big.capacity(), 1024u);
}

TEST(SpscRing, FullAndEmptyBoundaries) {
  SpscRing<int> ring(4);
  EXPECT_TRUE(ring.empty());
  int out = -1;
  EXPECT_FALSE(ring.try_pop(out));

  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_FALSE(ring.try_push(99));  // full

  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(ring.try_push(4));  // freed slot is reusable
  for (int expect = 1; expect <= 4; ++expect) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, expect);
  }
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, FifoOrderAcrossManyWraparounds) {
  SpscRing<int> ring(8);
  int next_push = 0;
  int next_pop = 0;
  // Uneven push/pop rhythm so head and tail cross the wrap point at
  // different offsets.
  for (int round = 0; round < 1000; ++round) {
    const int burst = 1 + round % 7;
    for (int i = 0; i < burst; ++i) {
      if (!ring.try_push(next_push)) break;
      ++next_push;
    }
    int out = -1;
    for (int i = 0; i < 1 + round % 5 && ring.try_pop(out); ++i) {
      ASSERT_EQ(out, next_pop);
      ++next_pop;
    }
  }
  int out = -1;
  while (ring.try_pop(out)) {
    ASSERT_EQ(out, next_pop);
    ++next_pop;
  }
  EXPECT_EQ(next_pop, next_push);
}

TEST(SpscRing, BatchedPushAcceptsOnlyFreeSpace) {
  SpscRing<int> ring(4);
  const int items[6] = {0, 1, 2, 3, 4, 5};
  EXPECT_EQ(ring.try_push_batch(items), 4u);  // capacity-bounded
  EXPECT_EQ(ring.try_push_batch(items), 0u);  // full

  int out[8] = {};
  EXPECT_EQ(ring.try_pop_batch(out, 2), 2u);  // max-bounded
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[1], 1);
  EXPECT_EQ(ring.try_pop_batch(out, 8), 2u);  // drains the rest
  EXPECT_EQ(out[0], 2);
  EXPECT_EQ(out[1], 3);
  EXPECT_EQ(ring.try_pop_batch(out, 8), 0u);  // empty
}

TEST(SpscRing, BatchedOpsPreserveOrderAcrossWraparound) {
  SpscRing<int> ring(8);
  std::vector<int> sent(64);
  std::iota(sent.begin(), sent.end(), 0);
  std::vector<int> received;
  std::size_t pushed = 0;
  int scratch[8];
  while (received.size() < sent.size()) {
    pushed += ring.try_push_batch(
        std::span<const int>(sent).subspan(pushed, std::min<std::size_t>(
                                                       3, sent.size() - pushed)));
    const std::size_t got = ring.try_pop_batch(scratch, 5);
    received.insert(received.end(), scratch, scratch + got);
  }
  EXPECT_EQ(received, sent);
}

TEST(SpscRing, ThreadedProducerConsumerDeliversEverythingInOrder) {
  SpscRing<std::uint32_t> ring(64);
  constexpr std::uint32_t kCount = 200000;
  std::thread producer([&] {
    std::uint32_t batch[16];
    std::uint32_t next = 0;
    while (next < kCount) {
      const std::uint32_t n = std::min<std::uint32_t>(16, kCount - next);
      for (std::uint32_t i = 0; i < n; ++i) batch[i] = next + i;
      std::size_t sent = 0;
      while (sent < n) {
        sent += ring.try_push_batch(
            std::span<const std::uint32_t>(batch + sent, n - sent));
      }
      next += n;
    }
  });
  std::uint32_t expect = 0;
  std::uint32_t out[32];
  while (expect < kCount) {
    const std::size_t n = ring.try_pop_batch(out, 32);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(out[i], expect);
      ++expect;
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

// -- merge_snapshots --

TEST(MergeSnapshots, SumsCountersAndMergesEqualBoundHistograms) {
  obs::Registry a;
  obs::Registry b;
  a.counter("flows").inc(3);
  b.counter("flows").inc(4);
  b.counter("only_b").inc(1);
  a.histogram("lat", {1.0, 10.0}).observe(0.5);
  b.histogram("lat", {1.0, 10.0}).observe(5.0);
  b.histogram("lat", {1.0, 10.0}).observe(5.0);

  const auto merged = obs::merge_snapshots({a.snapshot(), b.snapshot()});
  EXPECT_DOUBLE_EQ(merged.value("flows"), 7.0);
  EXPECT_DOUBLE_EQ(merged.value("only_b"), 1.0);
  const auto* lat = merged.histogram("lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count, 3u);
  EXPECT_DOUBLE_EQ(lat->sum, 10.5);
  EXPECT_EQ(lat->counts[0], 1u);  // <= 1.0
  EXPECT_EQ(lat->counts[1], 2u);  // <= 10.0
}

TEST(MergeSnapshots, BoundsMismatchKeepsFirstHistogramIntact) {
  obs::Registry a;
  obs::Registry b;
  a.histogram("lat", {1.0, 10.0}).observe(0.5);
  b.histogram("lat", {2.0, 20.0}).observe(5.0);
  b.histogram("lat", {2.0, 20.0}).observe(15.0);

  const auto merged = obs::merge_snapshots({a.snapshot(), b.snapshot()});
  const auto* lat = merged.histogram("lat");
  ASSERT_NE(lat, nullptr);
  // The first snapshot's histogram wins wholesale: no count/sum/bucket
  // contribution from the incompatible layout leaks in.
  EXPECT_EQ(lat->bounds, (std::vector<double>{1.0, 10.0}));
  EXPECT_EQ(lat->count, 1u);
  EXPECT_DOUBLE_EQ(lat->sum, 0.5);
  EXPECT_EQ(lat->counts[0], 1u);
  EXPECT_EQ(lat->counts[1], 0u);
}

// -- SerializingSink --

TEST(SerializingSink, RenumbersConcurrentAlertsDensely) {
  alert::CollectingSink inner;
  alert::SerializingSink sink(&inner);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 250;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        alert::Alert a;
        a.id = static_cast<std::uint64_t>(t);  // shard-local ids collide
        sink.consume(a);
      }
    });
  }
  for (auto& t : threads) t.join();

  ASSERT_EQ(inner.alerts().size(),
            static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(sink.delivered(), static_cast<std::uint64_t>(kThreads * kPerThread));
  std::set<std::uint64_t> ids;
  for (const auto& a : inner.alerts()) ids.insert(a.id);
  EXPECT_EQ(ids.size(), inner.alerts().size());  // no collisions
  EXPECT_EQ(*ids.begin(), 1u);                   // dense from 1
  EXPECT_EQ(*ids.rbegin(), static_cast<std::uint64_t>(kThreads * kPerThread));
}

// -- ShardedRuntime --

sim::ExperimentConfig runtime_config() {
  sim::ExperimentConfig c;
  c.normal_flows_per_source = 1200;
  c.training_flows = 500;
  c.attack_volume = 0.04;
  c.engine.cluster.bits_per_feature = 48;
  c.seed = 77;
  return c;
}

void expect_same_result(const sim::ExperimentResult& x,
                        const sim::ExperimentResult& y) {
  EXPECT_EQ(x.attack_instances, y.attack_instances);
  EXPECT_EQ(x.detected_instances, y.detected_instances);
  EXPECT_EQ(x.attack_flows, y.attack_flows);
  EXPECT_EQ(x.detected_attack_flows, y.detected_attack_flows);
  EXPECT_EQ(x.benign_flows, y.benign_flows);
  EXPECT_EQ(x.false_positives, y.false_positives);
  EXPECT_EQ(x.benign_suspects, y.benign_suspects);
  EXPECT_EQ(x.alerts_eia, y.alerts_eia);
  EXPECT_EQ(x.alerts_scan, y.alerts_scan);
  EXPECT_EQ(x.alerts_nns, y.alerts_nns);
  EXPECT_EQ(x.alerts_fused, y.alerts_fused);
  EXPECT_DOUBLE_EQ(x.mean_detection_latency_ms, y.mean_detection_latency_ms);
  for (std::size_t k = 0; k < x.per_kind.size(); ++k) {
    EXPECT_EQ(x.per_kind[k], y.per_kind[k]) << "attack kind " << k;
  }
}

TEST(ShardedRuntime, ShardOfIsStableAndCoversAllShards) {
  const auto source = *net::IPv4Address::parse("10.1.2.3");
  const auto s = ShardedRuntime::shard_of(source, 4);
  EXPECT_EQ(ShardedRuntime::shard_of(source, 4), s);
  // Same source /24 always lands together, whatever the ingress -- the
  // grain of every (ingress, /24)-keyed learning structure.
  EXPECT_EQ(ShardedRuntime::shard_of(*net::IPv4Address::parse("10.1.2.200"), 4), s);
  std::set<std::size_t> seen;
  for (std::uint32_t i = 0; i < 256; ++i) {
    seen.insert(ShardedRuntime::shard_of(net::IPv4Address{i << 8}, 4));
  }
  EXPECT_EQ(seen.size(), 4u);  // hash actually spreads over the shards
}

// With scan analysis off, every pipeline stage keys its state on data
// colocated by the shard hash, so N shards must reproduce the serial
// engine's verdicts *exactly* -- the runtime's headline guarantee.
TEST(ShardedRuntime, ScanOffShardedExactlyMatchesSerial) {
  auto config = runtime_config();
  config.engine.use_scan_analysis = false;
  const auto serial = run_experiment(config);
  config.runtime_shards = 4;
  config.runtime_queue_depth = 256;
  const auto sharded = run_experiment(config);
  expect_same_result(serial, sharded);
  EXPECT_DOUBLE_EQ(sharded.metrics.value("infilter_runtime_dropped_total"), 0.0);
}

// With one shard, dispatch order == ring order == processing order, so the
// whole pipeline (scan analysis included) is exactly serial.
TEST(ShardedRuntime, OneShardFullPipelineExactlyMatchesSerial) {
  auto config = runtime_config();
  const auto serial = run_experiment(config);
  config.runtime_shards = 1;
  const auto sharded = run_experiment(config);
  expect_same_result(serial, sharded);
}

// The tentpole guarantee: with scan analysis ENABLED, every shard count
// reproduces the serial engine's verdicts exactly. The destination-keyed
// suspect buffer lives on the shared scan stage, which replays suspects
// in global dispatch order, so worker interleaving is invisible.
TEST(ShardedRuntime, ShardSweepFullPipelineExactlyMatchesSerial) {
  auto config = runtime_config();
  ASSERT_TRUE(config.engine.use_scan_analysis);
  const auto serial = run_experiment(config);
  // The property is only meaningful if the scan stage actually fires.
  EXPECT_GT(serial.alerts_scan, 0u);
  for (const int shards : {1, 2, 4, 8}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    auto sharded_config = config;
    sharded_config.runtime_shards = shards;
    const auto sharded = run_experiment(sharded_config);
    expect_same_result(serial, sharded);
  }
}

// The TTL-fusion extension of the same guarantee: hop-count classification
// and learning are keyed by the same (ingress, source /24) shard key as the
// EIA check and run in the worker half; the fused verdict is a pure
// function of the SuspectFlow, decided on the shared scan stage in global
// dispatch order. Every shard count must stay bit-identical to serial with
// TTL detection on.
TEST(ShardedRuntime, ShardSweepWithTtlDetectionExactlyMatchesSerial) {
  auto config = runtime_config();
  config.ttl_scenario = true;
  config.engine.use_hopcount = true;
  const auto serial = run_experiment(config);
  // Meaningful only if the fusion path actually fires (spoofed standard
  // kinds are EIA miss + TTL miss) and benign TTL learning happened.
  EXPECT_GT(serial.alerts_fused, 0u);
  for (const int shards : {1, 2, 4, 8}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    auto sharded_config = config;
    sharded_config.runtime_shards = shards;
    const auto sharded = run_experiment(sharded_config);
    expect_same_result(serial, sharded);
  }
}

// The Bloom EIA backend extension of the serial-equivalence guarantee:
// membership bits live in banks keyed by the SAME /24 hash as shard_of,
// so a bank's contents (and its rotation schedule) evolve from exactly
// the keys one shard processes, in that shard's dispatch order. Verdicts
// -- false positives included -- must be bit-identical to serial at every
// power-of-two shard count.
TEST(ShardedRuntime, ShardSweepWithBloomBackendExactlyMatchesSerial) {
  auto config = runtime_config();
  // Fewer preload blocks: 10 sources x 4 /11s is ~330k /24 inserts, the
  // regime 2^22 bits is sized for (the full Table 3 footprint would need
  // a 2^26-bit budget; quality-at-scale is bench_eia_scale's job).
  config.blocks_per_source = 4;
  config.engine.eia.backend.type = core::EiaBackendType::kBloom;
  config.engine.eia.backend.bits = 1 << 22;
  const auto serial = run_experiment(config);
  EXPECT_GT(serial.detected_instances, 0u);
  for (const int shards : {1, 2, 4, 8}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    auto sharded_config = config;
    sharded_config.runtime_shards = shards;
    const auto sharded = run_experiment(sharded_config);
    expect_same_result(serial, sharded);
  }
}

// Same invariance with aging on (rotating sub-filters) and the counting
// variant: rotation counters are bank-local, so the erasure schedule is
// also a pure function of each shard's own traffic.
TEST(ShardedRuntime, ShardSweepWithAgingCountingBloomMatchesSerial) {
  auto config = runtime_config();
  config.blocks_per_source = 4;
  config.engine.eia.backend.type = core::EiaBackendType::kCountingBloom;
  config.engine.eia.backend.bits = 1 << 21;
  config.engine.eia.backend.subfilters = 2;
  config.engine.eia.backend.rotate_every = 64;
  const auto serial = run_experiment(config);
  for (const int shards : {1, 2, 4, 8}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    auto sharded_config = config;
    sharded_config.runtime_shards = shards;
    const auto sharded = run_experiment(sharded_config);
    expect_same_result(serial, sharded);
  }
}

// Reproducibility across runs of the same configuration, independent of
// thread interleaving (a weaker property than serial equality, pinned
// separately so a failure distinguishes "nondeterministic" from "wrong").
TEST(ShardedRuntime, FullPipelineShardedIsSelfDeterministic) {
  auto config = runtime_config();
  config.runtime_shards = 3;
  const auto first = run_experiment(config);
  const auto second = run_experiment(config);
  expect_same_result(first, second);
}

void expect_same_alert(const alert::Alert& x, const alert::Alert& y) {
  EXPECT_EQ(x.id, y.id);
  EXPECT_EQ(x.create_time, y.create_time);
  EXPECT_EQ(x.stage, y.stage);
  EXPECT_EQ(x.source_ip.value(), y.source_ip.value());
  EXPECT_EQ(x.target_ip.value(), y.target_ip.value());
  EXPECT_EQ(x.target_port, y.target_port);
  EXPECT_EQ(x.proto, y.proto);
  EXPECT_EQ(x.ingress_port, y.ingress_port);
  EXPECT_EQ(x.expected_ingress, y.expected_ingress);
  EXPECT_EQ(x.nns_distance, y.nns_distance);
  EXPECT_EQ(x.nns_threshold, y.nns_threshold);
  EXPECT_DOUBLE_EQ(x.detection_latency_ms, y.detection_latency_ms);
  EXPECT_EQ(x.classification, y.classification);
}

// Field-level exactness on the raw streams: the sharded runtime's alert
// sequence (ids, contents, order) and the shared scan stage's internal
// stats must be bit-identical to the serial engine's, not just equal in
// aggregate.
TEST(ShardedRuntime, AlertStreamAndScanStatsBitIdenticalToSerial) {
  const auto config = runtime_config();
  const auto stream = sim::generate_stream(config);
  const auto clusters = sim::train_clusters(config);
  core::EngineConfig engine_config = config.engine;
  engine_config.seed = config.seed;

  alert::CollectingSink serial_sink;
  core::InFilterEngine serial(engine_config, &serial_sink);
  serial.set_clusters(clusters);
  for (int s = 0; s < config.sources; ++s) {
    const auto port = static_cast<core::IngressId>(config.first_port + s);
    const auto range = dagflow::eia_range(s, config.blocks_per_source);
    for (int b = range.first.index(); b <= range.last.index(); ++b) {
      serial.add_expected(port, net::SubBlock{b}.prefix());
    }
  }
  for (const auto& flow : stream.flows) {
    (void)serial.process(flow.record, flow.arrival_port, flow.record.last);
  }
  ASSERT_GT(serial_sink.alerts().size(), 0u);
  ASSERT_GT(serial.scan().stats().network_scans + serial.scan().stats().host_scans,
            0u);

  for (const int shards : {2, 4, 8}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    RuntimeConfig runtime_config;
    runtime_config.shards = shards;
    runtime_config.engine = engine_config;
    alert::CollectingSink sharded_sink;
    ShardedRuntime rt(runtime_config, &sharded_sink);
    rt.set_clusters(clusters);
    for (int s = 0; s < config.sources; ++s) {
      const auto port = static_cast<core::IngressId>(config.first_port + s);
      const auto range = dagflow::eia_range(s, config.blocks_per_source);
      for (int b = range.first.index(); b <= range.last.index(); ++b) {
        rt.add_expected(port, net::SubBlock{b}.prefix());
      }
    }
    for (const auto& flow : stream.flows) {
      ASSERT_TRUE(rt.submit(flow.record, flow.arrival_port, flow.record.last));
    }
    rt.flush();

    ASSERT_NE(rt.scan_stage_engine(), nullptr);
    const auto& serial_scan = serial.scan().stats();
    const auto& sharded_scan = rt.scan_stage_engine()->scan().stats();
    EXPECT_EQ(sharded_scan.observed, serial_scan.observed);
    EXPECT_EQ(sharded_scan.network_scans, serial_scan.network_scans);
    EXPECT_EQ(sharded_scan.host_scans, serial_scan.host_scans);
    EXPECT_EQ(sharded_scan.evictions, serial_scan.evictions);
    EXPECT_EQ(rt.scan_stage_engine()->scan().buffered_flows(),
              serial.scan().buffered_flows());

    ASSERT_EQ(sharded_sink.alerts().size(), serial_sink.alerts().size());
    for (std::size_t i = 0; i < serial_sink.alerts().size(); ++i) {
      SCOPED_TRACE("alert " + std::to_string(i));
      expect_same_alert(sharded_sink.alerts()[i], serial_sink.alerts()[i]);
    }

    const auto merged = rt.snapshot();
    EXPECT_DOUBLE_EQ(merged.value("infilter_flows_total"),
                     static_cast<double>(stream.flows.size()));
    EXPECT_DOUBLE_EQ(merged.value("infilter_alerts_total"),
                     static_cast<double>(serial_sink.alerts().size()));
  }
}

TEST(ShardedRuntime, MergedSnapshotAccountsForEveryFlow) {
  auto config = runtime_config();
  config.runtime_shards = 4;
  const auto result = run_experiment(config);
  // Per-shard engine counters merge into one coherent view.
  EXPECT_DOUBLE_EQ(result.metrics.value("infilter_flows_total"),
                   static_cast<double>(result.attack_flows + result.benign_flows));
  EXPECT_DOUBLE_EQ(result.metrics.value("infilter_runtime_shards"), 4.0);
  EXPECT_DOUBLE_EQ(
      result.metrics.value("infilter_runtime_submitted_total"),
      static_cast<double>(result.attack_flows + result.benign_flows));
  EXPECT_GT(result.metrics.value("infilter_runtime_batches_total"), 0.0);
}

netflow::V5Record simple_flow(std::uint32_t salt) {
  netflow::V5Record r;
  r.src_ip = net::IPv4Address{(10u << 24) | (salt << 8)};
  r.dst_ip = *net::IPv4Address::parse("100.64.0.1");
  r.proto = 6;
  r.src_port = 40000;
  r.dst_port = 80;
  r.packets = 10;
  r.bytes = 5000;
  r.first = salt;
  r.last = salt + 10;
  return r;
}

// Mid-stream snapshots must not race worker engine state: runtime-level
// metrics are always present, busy shards' engine registries are skipped,
// and after flush() the merged view is complete. Run under
// INFILTER_SANITIZE=thread this pins the absence of the data race.
TEST(ShardedRuntime, LiveSnapshotSkipsBusyShardsAndIsCompleteAfterFlush) {
  RuntimeConfig config;
  config.shards = 2;
  config.queue_depth = 64;
  config.engine.mode = core::EngineMode::kBasic;
  // A slow hook keeps workers mid-flow while the dispatcher snapshots.
  ShardedRuntime rt(config, nullptr,
                    [](const FlowItem&, const core::Verdict&) {
                      std::this_thread::sleep_for(std::chrono::microseconds(200));
                    });
  constexpr std::uint32_t kFlows = 300;
  for (std::uint32_t i = 0; i < kFlows; ++i) {
    rt.submit(simple_flow(i), 9001, i);
    if (i % 50 == 0) {
      const auto live = rt.snapshot();
      EXPECT_GE(live.value("infilter_runtime_submitted_total"),
                static_cast<double>(i));
      EXPECT_DOUBLE_EQ(live.value("infilter_runtime_shards"), 2.0);
    }
  }
  rt.flush();
  const auto drained = rt.snapshot();
  EXPECT_DOUBLE_EQ(drained.value("infilter_flows_total"),
                   static_cast<double>(kFlows));
}

// `this`-capturing pull gauges must not land in a caller-supplied registry:
// it can outlive the runtime, and a snapshot taken afterwards would call a
// dangling callback. Value counters (plain instruments) do land there and
// stay readable after the runtime dies.
TEST(ShardedRuntime, ExternalRegistryOutlivesRuntimeWithoutDanglingPulls) {
  obs::Registry registry;
  {
    RuntimeConfig config;
    config.shards = 2;
    config.engine.mode = core::EngineMode::kBasic;
    config.registry = &registry;
    ShardedRuntime rt(config);
    EXPECT_TRUE(rt.submit(simple_flow(1), 9001, 1));
    rt.shutdown();
    // While alive, snapshot() still exposes the private pull gauges.
    EXPECT_DOUBLE_EQ(rt.snapshot().value("infilter_runtime_shards"), 2.0);
  }
  const auto after = registry.snapshot();
  EXPECT_DOUBLE_EQ(after.value("infilter_runtime_submitted_total"), 1.0);
  EXPECT_EQ(after.find("infilter_runtime_shards"), nullptr);
  EXPECT_EQ(after.find("infilter_runtime_queued"), nullptr);
}

TEST(ShardedRuntime, DropPolicyShedsAndCountsWhenRingsStayFull) {
  RuntimeConfig config;
  config.shards = 1;
  config.queue_depth = 2;
  config.backpressure = BackpressurePolicy::kDrop;
  config.engine.mode = core::EngineMode::kBasic;
  // A slow hook keeps the single worker busy so the tiny ring fills.
  ShardedRuntime rt(config, nullptr,
                    [](const FlowItem&, const core::Verdict&) {
                      std::this_thread::sleep_for(std::chrono::milliseconds(2));
                    });
  constexpr std::uint64_t kFlows = 64;
  std::uint64_t accepted = 0;
  for (std::uint32_t i = 0; i < kFlows; ++i) {
    accepted += rt.submit(simple_flow(i), 9001, i) ? 1 : 0;
  }
  rt.flush();
  const auto stats = rt.stats();
  EXPECT_EQ(stats.submitted, kFlows);
  EXPECT_EQ(stats.dispatched, accepted);
  EXPECT_EQ(stats.processed, accepted);
  EXPECT_EQ(stats.dropped, kFlows - accepted);
  EXPECT_GT(stats.dropped, 0u);  // 64 x 2ms against a depth-2 ring must shed
  EXPECT_EQ(stats.backpressure_waits, 0u);
}

TEST(ShardedRuntime, BlockPolicyLosesNothingThroughTinyRings) {
  RuntimeConfig config;
  config.shards = 2;
  config.queue_depth = 2;
  config.backpressure = BackpressurePolicy::kBlock;
  config.engine.mode = core::EngineMode::kBasic;
  ShardedRuntime rt(config);
  constexpr std::uint64_t kFlows = 2000;
  for (std::uint32_t i = 0; i < kFlows; ++i) {
    EXPECT_TRUE(rt.submit(simple_flow(i), 9001, i));
  }
  rt.flush();
  const auto stats = rt.stats();
  EXPECT_EQ(stats.dispatched, kFlows);
  EXPECT_EQ(stats.processed, kFlows);
  EXPECT_EQ(stats.dropped, 0u);
}

// Drain completeness across the scan stage: flush() must not return while
// any suspect sits in a worker ring, the reorder window, or the scan
// thread's hands. Tiny rings and single-flow batches maximize in-flight
// hand-offs; every flow is an EIA miss, so every flow crosses both rings.
TEST(ShardedRuntime, FlushCompletesEveryInFlightSuspect) {
  RuntimeConfig config;
  config.shards = 4;
  config.queue_depth = 2;
  config.max_batch = 1;
  config.engine.mode = core::EngineMode::kEnhanced;
  config.engine.use_scan_analysis = true;
  config.engine.use_nns = false;  // no training needed; scan still runs
  std::atomic<std::uint64_t> hooks{0};
  std::atomic<std::uint64_t> suspect_hooks{0};
  ShardedRuntime rt(config, nullptr,
                    [&](const FlowItem&, const core::Verdict& verdict) {
                      hooks.fetch_add(1);
                      if (verdict.suspect) suspect_hooks.fetch_add(1);
                    });
  ASSERT_NE(rt.scan_stage_engine(), nullptr);
  constexpr std::uint64_t kFlows = 3000;
  for (std::uint32_t i = 0; i < kFlows; ++i) {
    ASSERT_TRUE(rt.submit(simple_flow(i), 9001, i));  // no EIA entries: all miss
  }
  rt.flush();
  const auto stats = rt.stats();
  EXPECT_EQ(stats.processed, kFlows);
  EXPECT_EQ(stats.suspects_forwarded, kFlows);
  EXPECT_EQ(stats.suspects_completed, kFlows);
  EXPECT_EQ(hooks.load(), kFlows);
  EXPECT_EQ(suspect_hooks.load(), kFlows);
  EXPECT_EQ(rt.scan_stage_engine()->scan().stats().observed, kFlows);
  // The merged view reconciles: the EIA halves on the shards, the scan
  // half on the stage engine, no flow double-counted or lost.
  const auto merged = rt.snapshot();
  EXPECT_DOUBLE_EQ(merged.value("infilter_flows_total"),
                   static_cast<double>(kFlows));
  EXPECT_DOUBLE_EQ(merged.value("infilter_scan_analyzed_total"),
                   static_cast<double>(kFlows));
  rt.shutdown();
  EXPECT_EQ(hooks.load(), kFlows);  // shutdown added nothing
}

TEST(ShardedRuntime, ShutdownIsIdempotentAndRejectsLateSubmits) {
  RuntimeConfig config;
  config.shards = 2;
  config.engine.mode = core::EngineMode::kBasic;
  ShardedRuntime rt(config);
  EXPECT_TRUE(rt.submit(simple_flow(1), 9001, 1));
  rt.shutdown();
  rt.shutdown();
  EXPECT_FALSE(rt.submit(simple_flow(2), 9001, 2));
  const auto stats = rt.stats();
  EXPECT_EQ(stats.processed, 1u);
  EXPECT_EQ(stats.dropped, 1u);
}

// -- Multi-producer dispatch --

// A producer that has finished submitting must keep beaconing idle until
// every producer is done: the merge bound waits on silent producers'
// watermarks, and a finished-but-silent producer would stall the other
// producers' flows against a full ring (the ingest receivers beacon every
// poll cycle for the same reason).
void beacon_until_done(ShardedRuntime& rt, int producer,
                       std::atomic<int>& live) {
  live.fetch_sub(1);
  while (live.load() > 0) {
    rt.producer_idle(producer);
    std::this_thread::yield();
  }
}

// The merge property behind every multi-producer guarantee: whatever the
// producer interleaving, each shard worker consumes its multi-SPSC fan-in
// in strictly increasing seq order, and each producer's claims stay
// monotone in its own submission order. Small rings + kBlock maximize
// merge pressure. TSan-clean under scripts/check.sh's --producers lane.
TEST(ShardedRuntime, MergeKeepsSeqStrictlyMonotonePerShard) {
  constexpr int kShards = 4;
  constexpr int kProducers = 4;
  constexpr std::uint64_t kPerProducer = 4000;
  RuntimeConfig config;
  config.shards = kShards;
  config.producers = kProducers;
  config.queue_depth = 32;
  config.backpressure = BackpressurePolicy::kBlock;
  config.engine.mode = core::EngineMode::kBasic;
  // kBasic keeps the scan stage inactive, so the hook fires on the owning
  // worker thread only: one writer per shard log, no lock needed.
  std::array<std::vector<std::uint64_t>, kShards> seq_log;
  std::array<std::vector<std::uint64_t>, kShards> tag_log;
  {
    ShardedRuntime rt(config, nullptr,
                      [&](const FlowItem& item, const core::Verdict&) {
                        const auto shard =
                            ShardedRuntime::shard_of(item.record.src_ip, kShards);
                        seq_log[shard].push_back(item.seq);
                        tag_log[shard].push_back(item.tag);
                      });
    ASSERT_EQ(rt.producer_count(), static_cast<std::size_t>(kProducers));
    std::atomic<int> live{kProducers};
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        std::vector<FlowItem> batch;
        for (std::uint64_t i = 0; i < kPerProducer; ++i) {
          const auto salt = static_cast<std::uint32_t>(i);
          batch.push_back(FlowItem{simple_flow(salt), 9001,
                                   static_cast<util::TimeMs>(i),
                                   (static_cast<std::uint64_t>(p) << 32) | i});
          if (batch.size() == 8) {
            rt.submit_batch(batch, p);
            batch.clear();
          }
        }
        if (!batch.empty()) rt.submit_batch(batch, p);
        beacon_until_done(rt, p, live);
      });
    }
    for (auto& t : producers) t.join();
    rt.flush();
    const auto stats = rt.stats();
    EXPECT_EQ(stats.processed, kPerProducer * kProducers);
    EXPECT_EQ(stats.dropped, 0u);
  }

  std::size_t total = 0;
  std::set<std::uint64_t> seqs;
  std::array<std::vector<std::uint64_t>, kProducers> seq_by_producer;
  for (auto& per : seq_by_producer) per.resize(kPerProducer, 0);
  for (int s = 0; s < kShards; ++s) {
    SCOPED_TRACE("shard=" + std::to_string(s));
    total += seq_log[s].size();
    for (std::size_t i = 1; i < seq_log[s].size(); ++i) {
      ASSERT_LT(seq_log[s][i - 1], seq_log[s][i]) << "merge out of order at " << i;
    }
    for (std::size_t i = 0; i < seq_log[s].size(); ++i) {
      seqs.insert(seq_log[s][i]);
      const auto p = static_cast<std::size_t>(tag_log[s][i] >> 32);
      seq_by_producer[p][tag_log[s][i] & 0xFFFFFFFFu] = seq_log[s][i];
    }
  }
  EXPECT_EQ(total, kPerProducer * kProducers);
  EXPECT_EQ(seqs.size(), total);  // seqs globally unique across producers
  // Each producer's seq claims are monotone in its own submission order.
  for (int p = 0; p < kProducers; ++p) {
    SCOPED_TRACE("producer=" + std::to_string(p));
    for (std::uint64_t i = 1; i < kPerProducer; ++i) {
      ASSERT_LT(seq_by_producer[p][i - 1], seq_by_producer[p][i]);
    }
  }
}

// The tentpole equivalence guarantee, multi-producer form: for every
// (shard count, producer count), the realized dispatch order -- read back
// through FlowItem::seq -- replayed through a fresh serial engine yields
// the sharded run's exact alert stream and scan stats. With one producer
// the realized order is submission order, so this subsumes the
// single-dispatcher sweep above.
TEST(ShardedRuntime, MultiProducerSweepReplaysIdenticalAlertStream) {
  auto config = runtime_config();
  config.normal_flows_per_source = 600;  // 12 combos below: keep each cheap
  config.training_flows = 300;
  const auto stream = sim::generate_stream(config);
  const auto clusters = sim::train_clusters(config);
  core::EngineConfig engine_config = config.engine;
  engine_config.seed = config.seed;
  const auto n = stream.flows.size();

  const auto preload = [&](auto& target) {
    for (int s = 0; s < config.sources; ++s) {
      const auto port = static_cast<core::IngressId>(config.first_port + s);
      const auto range = dagflow::eia_range(s, config.blocks_per_source);
      for (int b = range.first.index(); b <= range.last.index(); ++b) {
        target.add_expected(port, net::SubBlock{b}.prefix());
      }
    }
  };

  for (const int shards : {1, 2, 4, 8}) {
    for (const int producers : {1, 2, 4}) {
      SCOPED_TRACE("shards=" + std::to_string(shards) +
                   " producers=" + std::to_string(producers));
      RuntimeConfig rc;
      rc.shards = shards;
      rc.producers = producers;
      rc.engine = engine_config;
      std::vector<std::uint64_t> seq_of(n, 0);  // one writer per tag: race-free
      alert::CollectingSink sharded_sink;
      ShardedRuntime rt(rc, &sharded_sink,
                        [&](const FlowItem& item, const core::Verdict&) {
                          seq_of[item.tag] = item.seq;
                        });
      rt.set_clusters(clusters);
      preload(rt);
      std::atomic<int> live{producers};
      std::vector<std::thread> threads;
      for (int p = 0; p < producers; ++p) {
        threads.emplace_back([&, p] {
          std::vector<FlowItem> batch;
          for (std::size_t i = static_cast<std::size_t>(p); i < n;
               i += static_cast<std::size_t>(producers)) {
            const auto& flow = stream.flows[i];
            batch.push_back(FlowItem{flow.record, flow.arrival_port,
                                     static_cast<util::TimeMs>(flow.record.last),
                                     i});
            if (batch.size() == 128) {
              rt.submit_batch(batch, p);
              batch.clear();
            }
          }
          if (!batch.empty()) rt.submit_batch(batch, p);
          beacon_until_done(rt, p, live);
        });
      }
      for (auto& t : threads) t.join();
      rt.flush();

      // Replay the realized total order through a fresh serial engine.
      std::vector<std::size_t> order(n);
      std::iota(order.begin(), order.end(), std::size_t{0});
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return seq_of[a] < seq_of[b];
      });
      alert::CollectingSink replay_sink;
      core::InFilterEngine replay(engine_config, &replay_sink);
      replay.set_clusters(clusters);
      preload(replay);
      for (const auto i : order) {
        const auto& flow = stream.flows[i];
        (void)replay.process(flow.record, flow.arrival_port, flow.record.last);
      }

      ASSERT_GT(replay_sink.alerts().size(), 0u);
      ASSERT_EQ(sharded_sink.alerts().size(), replay_sink.alerts().size());
      for (std::size_t i = 0; i < replay_sink.alerts().size(); ++i) {
        SCOPED_TRACE("alert " + std::to_string(i));
        expect_same_alert(sharded_sink.alerts()[i], replay_sink.alerts()[i]);
      }
      if (rt.scan_stage_engine() != nullptr) {
        const auto& replay_scan = replay.scan().stats();
        const auto& sharded_scan = rt.scan_stage_engine()->scan().stats();
        EXPECT_EQ(sharded_scan.observed, replay_scan.observed);
        EXPECT_EQ(sharded_scan.network_scans, replay_scan.network_scans);
        EXPECT_EQ(sharded_scan.host_scans, replay_scan.host_scans);
        EXPECT_EQ(sharded_scan.evictions, replay_scan.evictions);
      }
    }
  }
}

// Satellite regression for the old single-dispatcher precondition:
// snapshot() and flush() must be safe while producer threads are
// mid-submit -- the submit gate stalls producers, advances every
// watermark, and nothing is lost or double-counted. TSan-clean.
TEST(ShardedRuntime, SnapshotAndFlushAreSafeWhileProducersSubmit) {
  constexpr int kProducers = 3;
  constexpr std::uint64_t kPerProducer = 2000;
  RuntimeConfig config;
  config.shards = 2;
  config.producers = kProducers;
  config.queue_depth = 64;
  config.backpressure = BackpressurePolicy::kBlock;
  config.engine.mode = core::EngineMode::kBasic;
  ShardedRuntime rt(config);
  std::atomic<int> live{kProducers};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      std::vector<FlowItem> batch;
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        batch.push_back(FlowItem{simple_flow(static_cast<std::uint32_t>(i)),
                                 9001, static_cast<util::TimeMs>(i)});
        if (batch.size() == 16) {
          rt.submit_batch(batch, p);
          batch.clear();
        }
      }
      if (!batch.empty()) rt.submit_batch(batch, p);
      beacon_until_done(rt, p, live);
    });
  }
  // Hammer the gate from the control thread while producers are live.
  while (live.load() > 0) {
    const auto snap = rt.snapshot();
    EXPECT_DOUBLE_EQ(snap.value("infilter_runtime_shards"), 2.0);
    rt.flush();  // mid-stream flush: drains what was claimed, loses nothing
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  for (auto& t : producers) t.join();
  rt.flush();
  const auto stats = rt.stats();
  EXPECT_EQ(stats.submitted, kPerProducer * kProducers);
  EXPECT_EQ(stats.dispatched, kPerProducer * kProducers);
  EXPECT_EQ(stats.processed, kPerProducer * kProducers);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_DOUBLE_EQ(rt.snapshot().value("infilter_flows_total"),
                   static_cast<double>(kPerProducer * kProducers));
}

// -- CPU placement (runtime/affinity.h) --

TEST(Affinity, ParseCpuSetExpandsRangesDedupsAndSorts) {
  const auto cpus = parse_cpu_set("8,0-3,2");
  ASSERT_TRUE(cpus.has_value());
  EXPECT_EQ(*cpus, (std::vector<int>{0, 1, 2, 3, 8}));
  const auto one = parse_cpu_set("7");
  ASSERT_TRUE(one.has_value());
  EXPECT_EQ(*one, std::vector<int>{7});
}

TEST(Affinity, ParseCpuSetRejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(parse_cpu_set("", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(parse_cpu_set("a").has_value());
  EXPECT_FALSE(parse_cpu_set("1,,2").has_value());
  EXPECT_FALSE(parse_cpu_set("3-1").has_value());  // reversed range
  EXPECT_FALSE(parse_cpu_set("0-").has_value());
  EXPECT_FALSE(parse_cpu_set("4096").has_value());  // above the id cap
}

TEST(Affinity, PinCurrentThreadIsGracefulOnAnyHost) {
  // Empty set: placement disabled, trivially succeeds.
  EXPECT_TRUE(pin_current_thread({}, 3));
  // Pin a scratch thread (not the test runner) to cpu 0, which exists on
  // any host; slot wraps round-robin past the set size.
  bool pinned = false;
  std::thread([&] { pinned = pin_current_thread({0}, 5); }).join();
#if defined(__linux__)
  EXPECT_TRUE(pinned);
#else
  EXPECT_FALSE(pinned);  // no-affinity platforms report the graceful no
#endif
}

TEST(ShardedRuntime, AlertsFromAllShardsArriveWithDenseIds) {
  RuntimeConfig config;
  config.shards = 4;
  config.queue_depth = 128;
  config.engine.mode = core::EngineMode::kBasic;  // every flow alerts (no EIA)
  alert::CollectingSink ui;
  ShardedRuntime rt(config, &ui);
  constexpr std::uint64_t kFlows = 500;
  for (std::uint32_t i = 0; i < kFlows; ++i) {
    rt.submit(simple_flow(i), 9001, i);
  }
  rt.shutdown();
  ASSERT_EQ(ui.alerts().size(), kFlows);
  std::set<std::uint64_t> ids;
  for (const auto& a : ui.alerts()) ids.insert(a.id);
  EXPECT_EQ(ids.size(), kFlows);
  EXPECT_EQ(*ids.begin(), 1u);
  EXPECT_EQ(*ids.rbegin(), kFlows);
}

}  // namespace
}  // namespace infilter::runtime

// Tests for the unary flow encoding of Section 4.2 (nns/encoding.h).

#include "nns/encoding.h"

#include <gtest/gtest.h>

#include <cmath>

namespace infilter::nns {
namespace {

TEST(UnaryEncoder, DimensionIsFeaturesTimesBits) {
  const UnaryEncoder enc({{0, 5}, {0, 10}}, 8);
  EXPECT_EQ(enc.dimension(), 16);
  EXPECT_EQ(enc.feature_count(), 2u);
  EXPECT_EQ(enc.bits_per_feature(), 8);
}

TEST(UnaryEncoder, PaperExampleShape) {
  // Section 4.2's example: X1 in [0,5] with 5 bits, X2 in [0,10] with 10
  // bits; X1=3, X2=6 encodes as 11100 111111 0000 -> "111001111110000".
  const UnaryEncoder x1({{0, 5}}, 5);
  const UnaryEncoder x2({{0, 10}}, 10);
  const auto v1 = x1.encode(std::vector<double>{3});
  const auto v2 = x2.encode(std::vector<double>{6});
  EXPECT_EQ(v1.popcount(), 3);
  EXPECT_EQ(v2.popcount(), 6);
  // Unary: a prefix of ones followed by zeros.
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(v1.get(i));
  for (int i = 3; i < 5; ++i) EXPECT_FALSE(v1.get(i));
}

TEST(UnaryEncoder, EncodingIsPrefixOfOnesPerFeature) {
  const UnaryEncoder enc({{0, 100}, {0, 100}}, 20);
  const auto v = enc.encode(std::vector<double>{35, 80});
  // Feature 0 occupies bits [0,20), feature 1 bits [20,40).
  const int ones0 = enc.quantize(35, 0);
  const int ones1 = enc.quantize(80, 1);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(v.get(i), i < ones0) << i;
  for (int i = 0; i < 20; ++i) EXPECT_EQ(v.get(20 + i), i < ones1) << i;
}

TEST(UnaryEncoder, HammingDistanceIsQuantizedL1) {
  // The defining property of the unary code: HD(enc(x), enc(y)) equals the
  // sum over features of |interval(x_c) - interval(y_c)|.
  const UnaryEncoder enc({{0, 100}, {0, 1000}}, 50);
  const std::vector<double> x{10, 400};
  const std::vector<double> y{30, 700};
  const int expected = std::abs(enc.quantize(10, 0) - enc.quantize(30, 0)) +
                       std::abs(enc.quantize(400, 1) - enc.quantize(700, 1));
  EXPECT_EQ(enc.encode(x).hamming_distance(enc.encode(y)), expected);
}

TEST(UnaryEncoder, ValuesClampToRange) {
  const UnaryEncoder enc({{0, 10}}, 10);
  EXPECT_EQ(enc.quantize(-5, 0), 0);
  EXPECT_EQ(enc.quantize(0, 0), 0);
  EXPECT_EQ(enc.quantize(10, 0), 10);
  EXPECT_EQ(enc.quantize(1e9, 0), 10);
  EXPECT_EQ(enc.encode(std::vector<double>{1e9}).popcount(), 10);
}

TEST(UnaryEncoder, MonotoneInValue) {
  const UnaryEncoder enc({{0, 1000}}, 64);
  int last = -1;
  for (double v = 0; v <= 1000; v += 50) {
    const int q = enc.quantize(v, 0);
    EXPECT_GE(q, last);
    last = q;
  }
}

TEST(UnaryEncoder, LogScaleSpreadsDecadesEvenly) {
  const auto enc = UnaryEncoder::log_scale({{1, 1e8}}, 80);  // 10 bits/decade
  const int q1 = enc.quantize(10, 0);
  const int q2 = enc.quantize(100, 0);
  const int q3 = enc.quantize(1000, 0);
  EXPECT_EQ(q2 - q1, q3 - q2);  // equal steps per decade
  EXPECT_EQ(q2 - q1, 10);
}

TEST(UnaryEncoder, LogScaleClampsNonPositive) {
  const auto enc = UnaryEncoder::log_scale({{1, 1e6}}, 60);
  EXPECT_EQ(enc.quantize(0, 0), 0);
  EXPECT_EQ(enc.quantize(0.5, 0), 0);
}

TEST(UnaryEncoder, EncodeIntoMatchesEncode) {
  const auto enc = UnaryEncoder::log_scale(
      {{1, 1e8}, {1, 1e6}, {1, 3.6e6}, {1, 1e9}, {0.01, 1e6}}, 48);
  const double values[] = {1234.0, 17.0, 2500.0, 3.9e6, 6.8};
  BitVector arena;
  enc.encode_into(values, arena);
  EXPECT_EQ(arena, enc.encode(values));
}

TEST(UnaryEncoder, EncodeIntoReusesTheBufferAcrossFlows) {
  const UnaryEncoder enc({{0, 100}, {0, 100}}, 64);
  BitVector arena;
  const double first[] = {90.0, 10.0};
  enc.encode_into(first, arena);
  const auto* words = arena.words().data();
  for (double v = 0; v <= 100; v += 7) {
    const double values[] = {v, 100 - v};
    enc.encode_into(values, arena);
    EXPECT_EQ(arena, enc.encode(values));
    EXPECT_EQ(arena.words().data(), words);  // zero-allocation steady state
  }
}

class QuantizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(QuantizeSweep, IntervalIndexAlwaysInBounds) {
  const int bits = GetParam();
  const UnaryEncoder enc({{-50, 50}}, bits);
  for (double v = -80; v <= 80; v += 1.37) {
    const int q = enc.quantize(v, 0);
    EXPECT_GE(q, 0);
    EXPECT_LE(q, bits);
  }
}

INSTANTIATE_TEST_SUITE_P(BitWidths, QuantizeSweep, ::testing::Values(1, 2, 7, 64, 144));

}  // namespace
}  // namespace infilter::nns

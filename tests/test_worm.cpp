// Tests for the worm epidemic model (traffic/worm.h).

#include "traffic/worm.h"

#include <gtest/gtest.h>

namespace infilter::traffic {
namespace {

WormConfig fast_config() {
  WormConfig config;
  config.horizon = 30 * util::kSecond;
  config.vulnerable_hosts = 200;
  config.probes_per_host_per_second = 10;
  return config;
}

TEST(Worm, EpidemicGrowsMonotonically) {
  util::Rng rng{1};
  const auto outcome = simulate_worm(fast_config(), rng);
  int last = 0;
  for (const auto& [time, infected] : outcome.infections_over_time) {
    EXPECT_GE(infected, last);
    last = infected;
  }
  EXPECT_EQ(outcome.final_infected, last);
  EXPECT_LE(outcome.final_infected, fast_config().vulnerable_hosts);
}

TEST(Worm, ProbesAreSlammerShaped) {
  util::Rng rng{2};
  const auto config = fast_config();
  const auto outcome = simulate_worm(config, rng);
  ASSERT_GT(outcome.border_trace.flows.size(), 0u);
  util::TimeMs last_start = 0;
  for (const auto& flow : outcome.border_trace.flows) {
    EXPECT_TRUE(flow.attack);
    EXPECT_EQ(flow.attack_kind, AttackKind::kSlammer);
    EXPECT_EQ(flow.packets, 1u);
    EXPECT_EQ(flow.bytes, 404u);
    EXPECT_EQ(flow.dst_port, 1434);
    EXPECT_TRUE(config.target_space.contains(flow.dst_ip));
    EXPECT_GE(flow.start, last_start);
    last_start = flow.start;
  }
  EXPECT_EQ(outcome.border_probes, outcome.border_trace.flows.size());
}

TEST(Worm, InternalAmplificationBeatsBorderOnlyGrowth) {
  // Infected inside hosts scan too, so infections accelerate: the second
  // half of the run infects more than the first half.
  util::Rng rng{3};
  WormConfig config = fast_config();
  config.horizon = 60 * util::kSecond;
  const auto outcome = simulate_worm(config, rng);
  const int half = outcome.infected_at(30 * util::kSecond);
  EXPECT_GT(outcome.final_infected - half, half)
      << "no exponential takeoff: " << half << " then " << outcome.final_infected;
}

TEST(Worm, ContainmentFreezesInfections) {
  WormConfig config = fast_config();
  config.horizon = 40 * util::kSecond;
  util::Rng rng_a{4};
  const auto contained = simulate_worm(config, rng_a, 10 * util::kSecond);
  util::Rng rng_b{4};
  const auto free = simulate_worm(config, rng_b);
  EXPECT_LT(contained.final_infected, free.final_infected);
  // After containment, the infected count never grows.
  int at_containment = contained.infected_at(10 * util::kSecond);
  EXPECT_EQ(contained.final_infected, at_containment);
  // And no border probes after containment.
  for (const auto& flow : contained.border_trace.flows) {
    EXPECT_LT(flow.start, 10 * util::kSecond + config.step);
  }
}

TEST(Worm, EarlierContainmentFewerInfections) {
  WormConfig config = fast_config();
  config.horizon = 60 * util::kSecond;
  util::Rng rng_a{5};
  const auto early = simulate_worm(config, rng_a, 5 * util::kSecond);
  util::Rng rng_b{5};
  const auto late = simulate_worm(config, rng_b, 45 * util::kSecond);
  EXPECT_LE(early.final_infected, late.final_infected);
  EXPECT_LT(early.final_infected, config.vulnerable_hosts / 2);
}

TEST(Worm, ImmediateContainmentStopsEverything) {
  util::Rng rng{6};
  const auto outcome = simulate_worm(fast_config(), rng, util::TimeMs{0});
  EXPECT_EQ(outcome.final_infected, 0);
  EXPECT_EQ(outcome.border_probes, 0u);
}

TEST(Worm, InfectedAtInterpolatesStepwise) {
  util::Rng rng{7};
  const auto outcome = simulate_worm(fast_config(), rng);
  EXPECT_EQ(outcome.infected_at(0), 0);
  EXPECT_EQ(outcome.infected_at(fast_config().horizon * 2), outcome.final_infected);
}

TEST(Worm, DeterministicForSeed) {
  util::Rng rng_a{8};
  util::Rng rng_b{8};
  const auto a = simulate_worm(fast_config(), rng_a);
  const auto b = simulate_worm(fast_config(), rng_b);
  EXPECT_EQ(a.final_infected, b.final_infected);
  EXPECT_EQ(a.border_probes, b.border_probes);
}

}  // namespace
}  // namespace infilter::traffic

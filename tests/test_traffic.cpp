// Tests for the traffic generators (traffic/normal.h, traffic/attacks.h).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "traffic/attacks.h"
#include "traffic/normal.h"
#include "traffic/sources.h"
#include "util/rng.h"

namespace infilter::traffic {
namespace {

using netflow::IpProto;

TEST(Trace, MergeOrdersByStartTime) {
  Trace a;
  a.flows.push_back(TraceFlow{.start = 300});
  a.flows.push_back(TraceFlow{.start = 500});
  Trace b;
  b.flows.push_back(TraceFlow{.start = 100});
  b.flows.push_back(TraceFlow{.start = 400});
  const auto merged = merge({a, b});
  ASSERT_EQ(merged.flows.size(), 4u);
  for (std::size_t i = 1; i < merged.flows.size(); ++i) {
    EXPECT_LE(merged.flows[i - 1].start, merged.flows[i].start);
  }
}

TEST(Trace, ShiftMovesAllStarts) {
  Trace t;
  t.flows.push_back(TraceFlow{.start = 10});
  t.flows.push_back(TraceFlow{.start = 20});
  shift(t, 1000);
  EXPECT_EQ(t.flows[0].start, 1010u);
  EXPECT_EQ(t.flows[1].start, 1020u);
}

TEST(Trace, DurationIsLatestEnd) {
  Trace t;
  t.flows.push_back(TraceFlow{.start = 10, .duration_ms = 5});
  t.flows.push_back(TraceFlow{.start = 8, .duration_ms = 100});
  EXPECT_EQ(t.duration(), 108u);
}

TEST(NormalTraffic, GeneratesRequestedCount) {
  NormalTrafficModel model;
  util::Rng rng{1};
  const auto trace = model.generate(500, 0, rng);
  EXPECT_EQ(trace.flows.size(), 500u);
  EXPECT_EQ(trace.attack_flow_count(), 0u);
}

TEST(NormalTraffic, ArrivalsAreOrderedFromOrigin) {
  NormalTrafficModel model;
  util::Rng rng{2};
  const auto trace = model.generate(200, 5000, rng);
  util::TimeMs last = 5000;
  for (const auto& flow : trace.flows) {
    EXPECT_GE(flow.start, last);
    last = flow.start;
  }
}

TEST(NormalTraffic, MixContainsAllSevenFamilies) {
  NormalTrafficModel model;
  util::Rng rng{3};
  const auto trace = model.generate(5000, 0, rng);
  bool http = false, smtp = false, ftp = false, dns = false, other_tcp = false,
       other_udp = false, icmp = false;
  for (const auto& f : trace.flows) {
    if (f.proto == static_cast<std::uint8_t>(IpProto::kTcp)) {
      if (f.dst_port == 80) http = true;
      else if (f.dst_port == 25) smtp = true;
      else if (f.dst_port == 21) ftp = true;
      else other_tcp = true;
    } else if (f.proto == static_cast<std::uint8_t>(IpProto::kUdp)) {
      if (f.dst_port == 53) dns = true;
      else other_udp = true;
    } else if (f.proto == static_cast<std::uint8_t>(IpProto::kIcmp)) {
      icmp = true;
    }
  }
  EXPECT_TRUE(http);
  EXPECT_TRUE(smtp);
  EXPECT_TRUE(ftp);
  EXPECT_TRUE(dns);
  EXPECT_TRUE(other_tcp);
  EXPECT_TRUE(other_udp);
  EXPECT_TRUE(icmp);
}

TEST(NormalTraffic, HttpDominatesByWeight) {
  NormalTrafficModel model;
  util::Rng rng{4};
  const auto trace = model.generate(8000, 0, rng);
  int http = 0;
  for (const auto& f : trace.flows) {
    http += (f.proto == static_cast<std::uint8_t>(IpProto::kTcp) && f.dst_port == 80)
                ? 1
                : 0;
  }
  const double fraction = static_cast<double>(http) / 8000.0;
  EXPECT_NEAR(fraction, 0.42, 0.05);
}

TEST(NormalTraffic, FlowInvariants) {
  NormalTrafficModel model;
  util::Rng rng{5};
  const auto trace = model.generate(3000, 0, rng);
  for (const auto& f : trace.flows) {
    EXPECT_GE(f.packets, 1u);
    EXPECT_GE(f.bytes, 40u);
    EXPECT_GE(f.bytes, f.packets * 30u);  // plausible bytes-per-packet floor
    if (f.proto == static_cast<std::uint8_t>(IpProto::kIcmp)) {
      EXPECT_EQ(f.src_port, 0);
      EXPECT_EQ(f.dst_port, 0);
    }
  }
}

TEST(NormalTraffic, DestinationsInsideConfiguredSpace) {
  NormalTrafficConfig config;
  config.destination_space = net::Prefix{net::IPv4Address{100, 64, 0, 0}, 16};
  NormalTrafficModel model(config);
  util::Rng rng{6};
  const auto trace = model.generate(1000, 0, rng);
  for (const auto& f : trace.flows) {
    EXPECT_TRUE(config.destination_space.contains(f.dst_ip));
  }
}

class AttackGenerators : public ::testing::TestWithParam<int> {};

TEST_P(AttackGenerators, ProducesLabeledFlowsWithVictimsInSpace) {
  const auto kind = static_cast<AttackKind>(GetParam());
  AttackConfig config;
  util::Rng rng{7};
  const auto trace = generate_attack(kind, config, 1000, rng);
  ASSERT_FALSE(trace.flows.empty());
  for (const auto& f : trace.flows) {
    EXPECT_EQ(f.attack_kind, kind);
    EXPECT_TRUE(config.destination_space.contains(f.dst_ip));
    EXPECT_GE(f.start, 1000u);
    EXPECT_GE(f.packets, 1u);
  }
  EXPECT_GT(trace.attack_flow_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, AttackGenerators,
                         ::testing::Range(0, kAttackKindCount));

TEST(Attacks, SlammerIsSingle404ByteUdpTo1434) {
  AttackConfig config;
  util::Rng rng{8};
  const auto trace = generate_attack(AttackKind::kSlammer, config, 0, rng);
  std::set<std::uint32_t> victims;
  for (const auto& f : trace.flows) {
    EXPECT_EQ(f.proto, static_cast<std::uint8_t>(IpProto::kUdp));
    EXPECT_EQ(f.dst_port, 1434);
    EXPECT_EQ(f.packets, 1u);
    EXPECT_EQ(f.bytes, 404u);
    victims.insert(f.dst_ip.value());
  }
  // Random scanning: many distinct victims.
  EXPECT_GT(victims.size(), trace.flows.size() / 2);
}

TEST(Attacks, NetworkScanFixedPortDistinctHosts) {
  AttackConfig config;
  util::Rng rng{9};
  const auto trace = generate_attack(AttackKind::kNmapNetworkScan, config, 0, rng);
  std::set<std::uint16_t> ports;
  std::set<std::uint32_t> hosts;
  for (const auto& f : trace.flows) {
    if (!f.attack) continue;
    ports.insert(f.dst_port);
    hosts.insert(f.dst_ip.value());
  }
  EXPECT_EQ(ports.size(), 1u);  // "destination port is typically fixed"
  EXPECT_EQ(hosts.size(), trace.attack_flow_count());  // distinct hosts
}

TEST(Attacks, IdleScanOneHostManyPorts) {
  AttackConfig config;
  util::Rng rng{10};
  const auto trace = generate_attack(AttackKind::kNmapIdleScan, config, 0, rng);
  std::set<std::uint16_t> ports;
  std::set<std::uint32_t> hosts;
  for (const auto& f : trace.flows) {
    if (!f.attack) continue;
    ports.insert(f.dst_port);
    hosts.insert(f.dst_ip.value());
  }
  EXPECT_EQ(hosts.size(), 1u);
  EXPECT_EQ(ports.size(), trace.attack_flow_count());
}

TEST(Attacks, StealthyAttacksAreSmall) {
  AttackConfig config;
  util::Rng rng{11};
  for (const auto kind : {AttackKind::kPuke, AttackKind::kJolt, AttackKind::kTeardrop}) {
    const auto trace = generate_attack(kind, config, 0, rng);
    EXPECT_LE(trace.flows.size(), 5u) << attack_name(kind);
    EXPECT_TRUE(is_stealthy(kind));
  }
  EXPECT_TRUE(is_stealthy(AttackKind::kSlammer));
  EXPECT_FALSE(is_stealthy(AttackKind::kTfn2k));
}

TEST(Attacks, StealthyAttacksHaveNoCompanions) {
  AttackConfig config;
  config.companion_fraction = 0.5;
  util::Rng rng{12};
  for (const auto kind : {AttackKind::kPuke, AttackKind::kJolt, AttackKind::kTeardrop,
                          AttackKind::kSlammer}) {
    const auto trace = generate_attack(kind, config, 0, rng);
    EXPECT_EQ(trace.attack_flow_count(), trace.flows.size()) << attack_name(kind);
  }
}

TEST(Attacks, NoisyAttacksCarryCompanions) {
  AttackConfig config;
  config.companion_fraction = 0.4;
  util::Rng rng{13};
  const auto trace = generate_attack(AttackKind::kNessusHttp, config, 0, rng);
  EXPECT_LT(trace.attack_flow_count(), trace.flows.size());
  // Companions target the same service.
  for (const auto& f : trace.flows) {
    if (!f.attack) EXPECT_EQ(f.dst_port, 80);
  }
}

TEST(Attacks, CompanionFractionZeroDisablesCompanions) {
  AttackConfig config;
  config.companion_fraction = 0;
  util::Rng rng{14};
  const auto trace = generate_attack(AttackKind::kNessusHttp, config, 0, rng);
  EXPECT_EQ(trace.attack_flow_count(), trace.flows.size());
}

TEST(Attacks, IntensityScalesFlowCount) {
  AttackConfig one;
  one.intensity = 1.0;
  one.companion_fraction = 0;
  AttackConfig four;
  four.intensity = 4.0;
  four.companion_fraction = 0;
  util::Rng rng1{15};
  util::Rng rng2{15};
  const auto small = generate_attack(AttackKind::kSynFlood, one, 0, rng1);
  const auto large = generate_attack(AttackKind::kSynFlood, four, 0, rng2);
  EXPECT_NEAR(static_cast<double>(large.flows.size()),
              4.0 * static_cast<double>(small.flows.size()),
              static_cast<double>(small.flows.size()) * 0.1);
}

TEST(Attacks, TfnFloodIsVoluminous) {
  AttackConfig config;
  util::Rng rng{16};
  const auto trace = generate_attack(AttackKind::kTfn2k, config, 0, rng);
  std::uint64_t total_packets = 0;
  for (const auto& f : trace.flows) {
    if (f.attack) total_packets += f.packets;
  }
  EXPECT_GT(total_packets, 10000u);  // a flood, not a probe
}

TEST(Attacks, AttackSetContainsAllKinds) {
  AttackConfig config;
  util::Rng rng{17};
  const auto trace = generate_attack_set(config, 0, 60000, rng);
  std::set<int> kinds;
  for (const auto& f : trace.flows) {
    if (f.attack) kinds.insert(static_cast<int>(f.attack_kind));
  }
  // The standard set is the paper's twelve; the TTL-aware kinds are
  // launched separately by TTL-scenario experiments.
  EXPECT_EQ(kinds.size(), static_cast<std::size_t>(kStandardAttackKindCount));
}

TEST(Attacks, EveryKindHasAName) {
  std::set<std::string_view> names;
  for (int k = 0; k < kAttackKindCount; ++k) {
    const auto name = attack_name(static_cast<AttackKind>(k));
    EXPECT_NE(name, "unknown");
    EXPECT_TRUE(names.insert(name).second) << "duplicate name " << name;
  }
}

// -- Skewed source popularity (traffic/sources.h) --

TEST(ZipfSources, SameSeedReproducesDrawsExactly) {
  const SourceSkewConfig config{.zipf_s = 1.26, .churn_every = 500};
  ZipfSourceModel a(64, config, 42);
  ZipfSourceModel b(64, config, 42);
  util::Rng rng_a{7};
  util::Rng rng_b{7};
  for (int i = 0; i < 2000; ++i) {
    ASSERT_EQ(a.draw(rng_a), b.draw(rng_b)) << "draw " << i;
  }
  EXPECT_EQ(a.epochs(), b.epochs());
}

TEST(ZipfSources, SkewConcentratesDrawsOnAFewItems) {
  constexpr std::size_t kItems = 100;
  constexpr int kDraws = 20000;
  ZipfSourceModel model(kItems, SourceSkewConfig{}, 11);
  util::Rng rng{3};
  std::vector<int> counts(kItems, 0);
  for (int i = 0; i < kDraws; ++i) {
    const auto item = model.draw(rng);
    ASSERT_LT(item, kItems);
    ++counts[item];
  }
  // Zipf(1.26) over 100 items puts ~23% of mass on rank 1; uniform would
  // put 1% on every item. The hot item must dominate the uniform share.
  const int hottest = *std::max_element(counts.begin(), counts.end());
  EXPECT_GT(hottest, kDraws / 10);
  EXPECT_EQ(model.epochs(), 0u);  // no churn configured
}

TEST(ZipfSources, ChurnRotatesWhichItemIsHot) {
  constexpr std::size_t kItems = 100;
  constexpr std::size_t kChurn = 1000;
  constexpr std::size_t kEpochs = 5;
  ZipfSourceModel model(kItems, SourceSkewConfig{.churn_every = kChurn}, 99);
  util::Rng rng{5};
  std::set<std::size_t> hot_items;
  for (std::size_t e = 0; e < kEpochs; ++e) {
    std::vector<int> counts(kItems, 0);
    for (std::size_t i = 0; i < kChurn; ++i) ++counts[model.draw(rng)];
    hot_items.insert(static_cast<std::size_t>(
        std::max_element(counts.begin(), counts.end()) - counts.begin()));
  }
  EXPECT_EQ(model.epochs(), kEpochs - 1);
  // The rank -> item permutation reshuffles each epoch, so the heavy
  // hitter moves (a 1-in-100 coincidence per epoch at this seed: none).
  EXPECT_GT(hot_items.size(), 1u);
}

}  // namespace
}  // namespace infilter::traffic

// Tests for the deployable analysis node (app/node.h): the full live
// pipeline over real loopback sockets.

#include "app/node.h"

#include <gtest/gtest.h>

#include "dagflow/dagflow.h"
#include "traffic/attacks.h"
#include "traffic/normal.h"

namespace infilter::app {
namespace {

std::vector<netflow::V5Record> training_records(std::uint64_t seed) {
  traffic::NormalTrafficModel model;
  util::Rng rng{seed};
  const auto trace = model.generate(600, 0, rng);
  dagflow::Dagflow replayer(
      dagflow::DagflowConfig{},
      dagflow::AddressPool::from_subblocks({*net::SubBlock::parse("1a")}), seed);
  std::vector<netflow::V5Record> records;
  for (const auto& labeled : replayer.replay(trace)) records.push_back(labeled.record);
  return records;
}

NodeConfig test_config(std::vector<std::uint16_t> ports) {
  NodeConfig config;
  config.ports = std::move(ports);
  config.engine.cluster.bits_per_feature = 48;
  config.engine.seed = 5;
  return config;
}

void preload_table3(InFilterNode& node, std::span<const std::uint16_t> ports) {
  // Map source s's Table 3 blocks to the s-th bound port.
  for (std::size_t s = 0; s < ports.size(); ++s) {
    for (const auto& block : dagflow::eia_range(static_cast<int>(s)).expand()) {
      node.add_expected(ports[s], block.prefix());
    }
  }
}

TEST(InFilterNode, BindsEphemeralPorts) {
  auto node = InFilterNode::create(test_config({0, 0, 0}));
  ASSERT_TRUE(node.has_value()) << node.error().message;
  const auto ports = (*node)->ports();
  ASSERT_EQ(ports.size(), 3u);
  for (const auto port : ports) EXPECT_GT(port, 0);
}

TEST(InFilterNode, PollWithoutTrafficProcessesNothing) {
  auto node = InFilterNode::create(test_config({0}));
  ASSERT_TRUE(node.has_value());
  const auto processed = (*node)->poll_once(10);
  ASSERT_TRUE(processed.has_value());
  EXPECT_EQ(*processed, 0u);
  EXPECT_EQ((*node)->stats().flows_processed, 0u);
}

TEST(InFilterNode, EndToEndLiveDetection) {
  alert::CollectingSink ui;
  auto node = InFilterNode::create(test_config({0, 0}), &ui);
  ASSERT_TRUE(node.has_value()) << node.error().message;
  const auto ports = (*node)->ports();
  preload_table3(**node, ports);
  (*node)->train(training_records(7));

  auto sender = flowtools::UdpSender::create();
  ASSERT_TRUE(sender.has_value());

  // Normal traffic through port 0 (source 0's own blocks): clean.
  traffic::NormalTrafficModel model;
  util::Rng rng{8};
  {
    const auto trace = model.generate(150, 0, rng);
    dagflow::Dagflow source(
        dagflow::DagflowConfig{.netflow_port = ports[0]},
        dagflow::AddressPool::from_allocation(dagflow::make_allocation(10, 100, 0, 0)[0]),
        9);
    const auto labeled = source.replay(trace);
    for (const auto& datagram : source.export_datagrams(labeled, 1000)) {
      ASSERT_TRUE(sender->send(ports[0], datagram).has_value());
    }
  }
  // A spoofed Slammer sweep through port 1.
  traffic::AttackConfig attack_config;
  attack_config.companion_fraction = 0;
  const auto worm = traffic::generate_attack(traffic::AttackKind::kSlammer,
                                             attack_config, 2000, rng);
  {
    dagflow::Dagflow attacker(
        dagflow::DagflowConfig{.netflow_port = ports[1]},
        dagflow::AddressPool::from_subblocks({*net::SubBlock::parse("70a")}), 10);
    const auto labeled = attacker.replay(worm);
    for (const auto& datagram : attacker.export_datagrams(labeled, 2000)) {
      ASSERT_TRUE(sender->send(ports[1], datagram).has_value());
    }
  }

  // Drain until everything sent has been analyzed (bounded retries).
  const std::size_t expected = 150 + worm.flows.size();
  std::size_t processed = 0;
  for (int i = 0; i < 200 && processed < expected; ++i) {
    const auto result = (*node)->poll_once(20);
    ASSERT_TRUE(result.has_value()) << result.error().message;
    processed += *result;
  }
  EXPECT_EQ(processed, expected);

  const auto& stats = (*node)->stats();
  EXPECT_EQ(stats.flows_processed, expected);
  EXPECT_EQ(stats.suspects, worm.flows.size());  // only the worm is spoofed
  EXPECT_GT(stats.attacks_flagged, worm.flows.size() / 2);
  EXPECT_EQ(stats.malformed_datagrams, 0u);

  // Alerts flowed through traceback to the UI, and traceback grouped the
  // sweep into one episode entering via port 1.
  EXPECT_GT(ui.alerts().size(), 0u);
  const auto episodes = (*node)->traceback().episodes();
  ASSERT_GE(episodes.size(), 1u);
  EXPECT_EQ(episodes.front().primary_ingress(), ports[1]);
  EXPECT_EQ(episodes.front().service_port, std::optional<std::uint16_t>{1434});
}

TEST(InFilterNode, StatsAccumulateAcrossPolls) {
  auto node = InFilterNode::create(test_config({0}));
  ASSERT_TRUE(node.has_value());
  const auto ports = (*node)->ports();
  preload_table3(**node, ports);
  (*node)->train(training_records(11));

  auto sender = flowtools::UdpSender::create();
  ASSERT_TRUE(sender.has_value());
  traffic::NormalTrafficModel model;
  util::Rng rng{12};
  for (int batch = 0; batch < 3; ++batch) {
    const auto trace = model.generate(40, 0, rng);
    dagflow::Dagflow source(
        dagflow::DagflowConfig{.netflow_port = ports[0]},
        dagflow::AddressPool::from_allocation(dagflow::make_allocation(10, 100, 0, 0)[0]),
        static_cast<std::uint64_t>(13 + batch));
    const auto labeled = source.replay(trace);
    for (const auto& datagram : source.export_datagrams(labeled, 1000)) {
      ASSERT_TRUE(sender->send(ports[0], datagram).has_value());
    }
    std::size_t processed = 0;
    for (int i = 0; i < 100 && processed < 40; ++i) {
      const auto result = (*node)->poll_once(20);
      ASSERT_TRUE(result.has_value());
      processed += *result;
    }
  }
  EXPECT_EQ((*node)->stats().flows_processed, 120u);
}

}  // namespace
}  // namespace infilter::app

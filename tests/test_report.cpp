// Tests for flow statistics, filtering, grouping and reports
// (flowtools/stats.h, flowtools/report.h).

#include "flowtools/report.h"

#include <gtest/gtest.h>

namespace infilter::flowtools {
namespace {

CapturedFlow flow(const char* src, const char* dst, std::uint8_t proto,
                  std::uint16_t dst_port, std::uint32_t packets, std::uint32_t bytes,
                  std::uint32_t duration = 1000, std::uint16_t port = 9001) {
  CapturedFlow f;
  f.record.src_ip = *net::IPv4Address::parse(src);
  f.record.dst_ip = *net::IPv4Address::parse(dst);
  f.record.proto = proto;
  f.record.src_port = 40000;
  f.record.dst_port = dst_port;
  f.record.packets = packets;
  f.record.bytes = bytes;
  f.record.first = 0;
  f.record.last = duration;
  f.arrival_port = port;
  return f;
}

TEST(FlowStats, ComputesTheFivePaperStatistics) {
  const auto f = flow("1.2.3.4", "5.6.7.8", 6, 80, 10, 5000, 2000);
  const auto stats = FlowStats::from_record(f.record);
  EXPECT_DOUBLE_EQ(stats.byte_count, 5000);
  EXPECT_DOUBLE_EQ(stats.packet_count, 10);
  EXPECT_DOUBLE_EQ(stats.duration_ms, 2000);
  EXPECT_DOUBLE_EQ(stats.bit_rate, 5000 * 8.0 / 2.0);
  EXPECT_DOUBLE_EQ(stats.packet_rate, 10 / 2.0);
}

TEST(FlowStats, SinglePacketFlowHasFiniteRates) {
  // Slammer: one 404-byte packet, zero duration.
  const auto f = flow("1.2.3.4", "5.6.7.8", 17, 1434, 1, 404, 0);
  const auto stats = FlowStats::from_record(f.record);
  EXPECT_DOUBLE_EQ(stats.duration_ms, 0);
  EXPECT_DOUBLE_EQ(stats.bit_rate, 404 * 8.0 * 1000.0);  // over 1 ms floor
  EXPECT_DOUBLE_EQ(stats.packet_rate, 1000.0);
}

TEST(FlowStats, ArrayOrderMatchesPaperListing) {
  const auto f = flow("1.2.3.4", "5.6.7.8", 6, 80, 10, 5000, 2000);
  const auto a = FlowStats::from_record(f.record).as_array();
  EXPECT_DOUBLE_EQ(a[0], 5000);  // i) byte count
  EXPECT_DOUBLE_EQ(a[1], 10);    // ii) packet count
  EXPECT_DOUBLE_EQ(a[2], 2000);  // iii) duration
  EXPECT_GT(a[3], 0);            // iv) bit rate
  EXPECT_GT(a[4], 0);            // v) packet rate
}

TEST(FlowFilter, EmptyFilterMatchesEverything) {
  EXPECT_TRUE(FlowFilter{}.matches(flow("1.2.3.4", "5.6.7.8", 6, 80, 1, 40)));
}

TEST(FlowFilter, FiltersBySourcePrefix) {
  FlowFilter filter;
  filter.src_prefix = net::Prefix::parse("10.0.0.0/8");
  EXPECT_TRUE(filter.matches(flow("10.9.9.9", "5.6.7.8", 6, 80, 1, 40)));
  EXPECT_FALSE(filter.matches(flow("11.0.0.1", "5.6.7.8", 6, 80, 1, 40)));
}

TEST(FlowFilter, ConjunctionOfFields) {
  FlowFilter filter;
  filter.proto = 17;
  filter.dst_port = 53;
  filter.arrival_port = 9002;
  EXPECT_TRUE(filter.matches(flow("1.1.1.1", "2.2.2.2", 17, 53, 1, 60, 10, 9002)));
  EXPECT_FALSE(filter.matches(flow("1.1.1.1", "2.2.2.2", 17, 53, 1, 60, 10, 9003)));
  EXPECT_FALSE(filter.matches(flow("1.1.1.1", "2.2.2.2", 6, 53, 1, 60, 10, 9002)));
  EXPECT_FALSE(filter.matches(flow("1.1.1.1", "2.2.2.2", 17, 54, 1, 60, 10, 9002)));
}

TEST(FlowFilter, FilterFlowsPreservesOrder) {
  std::vector<CapturedFlow> flows{flow("10.0.0.1", "2.2.2.2", 6, 80, 1, 40),
                                  flow("11.0.0.1", "2.2.2.2", 6, 80, 2, 80),
                                  flow("10.0.0.2", "2.2.2.2", 6, 80, 3, 120)};
  FlowFilter filter;
  filter.src_prefix = net::Prefix::parse("10.0.0.0/8");
  const auto kept = filter_flows(flows, filter);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].record.packets, 1u);
  EXPECT_EQ(kept[1].record.packets, 3u);
}

TEST(GroupFlows, GroupByDstPortAggregates) {
  std::vector<CapturedFlow> flows{flow("1.1.1.1", "2.2.2.2", 6, 80, 10, 1000),
                                  flow("1.1.1.2", "2.2.2.3", 6, 80, 20, 3000),
                                  flow("1.1.1.3", "2.2.2.4", 17, 53, 1, 60)};
  const auto rows = group_flows(flows, GroupField::kDstPort);
  ASSERT_EQ(rows.size(), 2u);
  // Sorted by bytes descending: port 80 first.
  EXPECT_EQ(rows[0].group_key, "dp80");
  EXPECT_EQ(rows[0].summary.flows, 2u);
  EXPECT_EQ(rows[0].summary.packets, 30u);
  EXPECT_EQ(rows[0].summary.bytes, 4000u);
  EXPECT_EQ(rows[1].group_key, "dp53");
}

TEST(GroupFlows, FullKeyGroupingIsPerFlow) {
  std::vector<CapturedFlow> flows{flow("1.1.1.1", "2.2.2.2", 6, 80, 10, 1000),
                                  flow("1.1.1.1", "2.2.2.2", 6, 81, 20, 3000),
                                  flow("1.1.1.2", "2.2.2.2", 6, 80, 1, 60)};
  const auto rows = group_flows(flows, kFlowKeyFields);
  EXPECT_EQ(rows.size(), 3u);
}

TEST(GroupFlows, CoarserGroupingAggregatesMore) {
  // "Grouping flows using these fields results in statistics being
  // computed for a group of flows rather than a single one."
  std::vector<CapturedFlow> flows;
  for (int i = 0; i < 12; ++i) {
    flows.push_back(flow("1.1.1.1", "2.2.2.2", 6,
                         static_cast<std::uint16_t>(80 + i % 3), 1, 40));
  }
  const auto by_port = group_flows(flows, GroupField::kDstPort);
  const auto by_proto = group_flows(flows, GroupField::kProto);
  EXPECT_EQ(by_port.size(), 3u);
  EXPECT_EQ(by_proto.size(), 1u);
  EXPECT_EQ(by_proto.front().summary.flows, 12u);
}

TEST(GroupFlows, MeanRatesAreAverages) {
  std::vector<CapturedFlow> flows{
      flow("1.1.1.1", "2.2.2.2", 6, 80, 10, 1000, 1000),   // 8000 bps
      flow("1.1.1.2", "2.2.2.2", 6, 80, 10, 3000, 1000)};  // 24000 bps
  const auto rows = group_flows(flows, GroupField::kDstPort);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[0].summary.mean_bit_rate, 16000.0);
}

TEST(RenderReport, ContainsHeaderAndRows) {
  std::vector<CapturedFlow> flows{flow("1.1.1.1", "2.2.2.2", 6, 80, 10, 1000)};
  const auto rows = group_flows(flows, GroupField::kDstPort);
  const auto text = render_report(rows, GroupField::kDstPort);
  EXPECT_NE(text.find("octets"), std::string::npos);
  EXPECT_NE(text.find("dp80"), std::string::npos);
  EXPECT_NE(text.find("1000"), std::string::npos);
}

TEST(GroupField, MaskComposition) {
  const auto mask = GroupField::kSrcIp | GroupField::kDstPort;
  EXPECT_TRUE(has_field(mask, GroupField::kSrcIp));
  EXPECT_TRUE(has_field(mask, GroupField::kDstPort));
  EXPECT_FALSE(has_field(mask, GroupField::kProto));
}

}  // namespace
}  // namespace infilter::flowtools

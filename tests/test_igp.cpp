// Tests for the per-AS interior routing simulation (routing/igp.h).

#include "routing/igp.h"

#include <gtest/gtest.h>

#include <set>

namespace infilter::routing {
namespace {

TEST(IgpNetwork, SingleRouterTrivialPath) {
  IgpNetwork igp(1, 1);
  const auto path = igp.shortest_path(0, 0);
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path.front(), 0);
}

TEST(IgpNetwork, TwoRoutersDirectPath) {
  IgpNetwork igp(2, 2);
  const auto path = igp.shortest_path(0, 1);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path.front(), 0);
  EXPECT_EQ(path.back(), 1);
}

class IgpSizes : public ::testing::TestWithParam<int> {};

TEST_P(IgpSizes, AllPairsConnected) {
  const int n = GetParam();
  IgpNetwork igp(n, 42);
  for (RouterId a = 0; a < n; ++a) {
    for (RouterId b = 0; b < n; ++b) {
      const auto path = igp.shortest_path(a, b);
      ASSERT_FALSE(path.empty()) << a << "->" << b;
      EXPECT_EQ(path.front(), a);
      EXPECT_EQ(path.back(), b);
      // Simple path: no repeated routers.
      std::set<RouterId> seen(path.begin(), path.end());
      EXPECT_EQ(seen.size(), path.size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, IgpSizes, ::testing::Values(1, 2, 3, 5, 8, 12));

TEST(IgpNetwork, PathsAreDeterministicBetweenCalls) {
  IgpNetwork igp(8, 7);
  const auto a = igp.shortest_path(0, 5);
  const auto b = igp.shortest_path(0, 5);
  EXPECT_EQ(a, b);
}

TEST(IgpNetwork, ChurnBumpsVersion) {
  IgpNetwork igp(6, 9);
  util::Rng rng{1};
  const auto v0 = igp.version();
  igp.churn(rng);
  EXPECT_EQ(igp.version(), v0 + 1);
  igp.churn(rng);
  EXPECT_EQ(igp.version(), v0 + 2);
}

TEST(IgpNetwork, ChurnEventuallyChangesSomePath) {
  IgpNetwork igp(8, 11);
  util::Rng rng{2};
  // Collect baseline paths between all pairs.
  std::vector<std::vector<RouterId>> baseline;
  for (RouterId a = 0; a < 8; ++a) {
    for (RouterId b = 0; b < 8; ++b) baseline.push_back(igp.shortest_path(a, b));
  }
  bool changed = false;
  for (int event = 0; event < 50 && !changed; ++event) {
    igp.churn(rng);
    std::size_t i = 0;
    for (RouterId a = 0; a < 8 && !changed; ++a) {
      for (RouterId b = 0; b < 8 && !changed; ++b) {
        changed = igp.shortest_path(a, b) != baseline[i++];
      }
    }
  }
  EXPECT_TRUE(changed) << "50 weight churns never changed any interior path";
}

TEST(IgpNetwork, ChurnPreservesConnectivity) {
  IgpNetwork igp(10, 13);
  util::Rng rng{3};
  for (int event = 0; event < 30; ++event) {
    igp.churn(rng);
    EXPECT_FALSE(igp.shortest_path(0, 9).empty());
  }
}

}  // namespace
}  // namespace infilter::routing

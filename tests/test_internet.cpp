// Tests for the traceroute-able internet (routing/internet.h).

#include "routing/internet.h"

#include <gtest/gtest.h>

namespace infilter::routing {
namespace {

TopologyConfig small_config() {
  TopologyConfig c;
  c.tier1_count = 3;
  c.tier2_count = 10;
  c.stub_count = 30;
  return c;
}

ChurnRates quiet() {
  ChurnRates r;
  r.igp_events_per_as_hour = 0;
  r.link_fail_per_hour = 0;
  r.link_repair_per_hour = 0;
  r.ecmp_rehash_per_hour = 0;
  return r;
}

TEST(Internet, TracerouteCompletesBetweenDistinctAses) {
  Internet internet(small_config(), quiet(), 1);
  const auto trace = internet.traceroute(40, 5);
  ASSERT_TRUE(trace.complete);
  ASSERT_GE(trace.as_path.size(), 2u);
  EXPECT_EQ(trace.as_path.front(), 40);
  EXPECT_EQ(trace.as_path.back(), 5);
  EXPECT_FALSE(trace.hops.empty());
}

TEST(Internet, TracerouteToSelfIsIncomplete) {
  Internet internet(small_config(), quiet(), 2);
  EXPECT_FALSE(internet.traceroute(7, 7).complete);
}

TEST(Internet, HopsFollowAsPathOrder) {
  Internet internet(small_config(), quiet(), 3);
  const auto trace = internet.traceroute(35, 2);
  ASSERT_TRUE(trace.complete);
  // Hop AS ids must appear in as_path order (non-decreasing position).
  std::size_t position = 0;
  for (const auto& hop : trace.hops) {
    while (position < trace.as_path.size() && trace.as_path[position] != hop.as) {
      ++position;
    }
    ASSERT_LT(position, trace.as_path.size())
        << "hop AS " << hop.as << " not on AS path";
  }
}

TEST(Internet, PeerAndBrHopExtraction) {
  Internet internet(small_config(), quiet(), 4);
  const auto trace = internet.traceroute(38, 6);
  ASSERT_TRUE(trace.complete);
  const Hop* peer = trace.peer_hop();
  const Hop* br = trace.br_hop();
  ASSERT_NE(peer, nullptr);
  ASSERT_NE(br, nullptr);
  EXPECT_EQ(peer->as, trace.as_path[trace.as_path.size() - 2]);
  EXPECT_EQ(br->as, trace.as_path.back());
}

TEST(Internet, BrHopIsIngressCircuitInterface) {
  Internet internet(small_config(), quiet(), 5);
  auto& routes = internet.routes_to(9);
  const AsId source = 36;
  const auto path = routes.path(source);
  ASSERT_GE(path.size(), 2u);
  const int link = routes.ingress_link(source);
  ASSERT_GE(link, 0);
  const auto trace = internet.traceroute(source, 9);
  ASSERT_TRUE(trace.complete);
  const Hop* br = trace.br_hop();
  ASSERT_NE(br, nullptr);
  const int circuit = internet.ecmp_circuit(link, source, 9);
  EXPECT_EQ(br->ip, internet.circuit_ip(link, circuit, 9));
}

TEST(Internet, StableWithoutChurn) {
  Internet internet(small_config(), quiet(), 6);
  const auto first = internet.traceroute(33, 4);
  for (int i = 0; i < 5; ++i) {
    internet.advance(30 * util::kMinute);
    const auto again = internet.traceroute(33, 4);
    ASSERT_TRUE(again.complete);
    EXPECT_EQ(again.hops, first.hops) << "iteration " << i;
  }
}

TEST(Internet, EcmpChoiceStableWithinEpochVariesAcrossFlows) {
  TopologyConfig config = small_config();
  config.parallel_link_fraction = 1.0;
  Internet internet(config, quiet(), 7);
  // Find a link with multiple circuits.
  int link = -1;
  for (std::size_t l = 0; l < internet.topology().links().size(); ++l) {
    if (internet.topology().links()[l].parallel_circuits > 1) {
      link = static_cast<int>(l);
      break;
    }
  }
  ASSERT_GE(link, 0);
  const int c1 = internet.ecmp_circuit(link, 10, 20);
  EXPECT_EQ(internet.ecmp_circuit(link, 10, 20), c1);  // stable
  // Different flows can hash to different circuits.
  bool differs = false;
  for (AsId from = 0; from < internet.topology().as_count() && !differs; ++from) {
    differs = internet.ecmp_circuit(link, from, 20) != c1;
  }
  EXPECT_TRUE(differs);
}

TEST(Internet, EcmpRehashChangesSomeChoices) {
  TopologyConfig config = small_config();
  config.parallel_link_fraction = 1.0;
  ChurnRates rates = quiet();
  rates.ecmp_rehash_per_hour = 50;  // rehash storm
  Internet internet(config, rates, 8);

  std::vector<int> before;
  for (std::size_t l = 0; l < internet.topology().links().size(); ++l) {
    before.push_back(internet.ecmp_circuit(static_cast<int>(l), 10, 20));
  }
  internet.advance(util::kHour);
  int changed = 0;
  for (std::size_t l = 0; l < internet.topology().links().size(); ++l) {
    changed += internet.ecmp_circuit(static_cast<int>(l), 10, 20) != before[l] ? 1 : 0;
  }
  EXPECT_GT(changed, 0);
}

TEST(Internet, CircuitIpsShareSlash24UnlessSpanning) {
  TopologyConfig config = small_config();
  config.parallel_link_fraction = 1.0;
  config.cross_subnet_fraction = 0.5;
  Internet internet(config, quiet(), 9);
  bool tested_same = false;
  bool tested_span = false;
  for (std::size_t l = 0; l < internet.topology().links().size(); ++l) {
    const auto& link = internet.topology().links()[l];
    if (link.parallel_circuits < 2) continue;
    const auto ip0 = internet.circuit_ip(static_cast<int>(l), 0, link.a);
    const auto ip1 = internet.circuit_ip(static_cast<int>(l), 1, link.a);
    if (link.circuits_span_subnets) {
      EXPECT_NE(net::to_slash24(ip0), net::to_slash24(ip1));
      tested_span = true;
    } else {
      EXPECT_EQ(net::to_slash24(ip0), net::to_slash24(ip1));
      tested_same = true;
    }
  }
  EXPECT_TRUE(tested_same);
  EXPECT_TRUE(tested_span);
}

TEST(Internet, BorderRouterIsStablePerLink) {
  Internet internet(small_config(), quiet(), 10);
  for (int l = 0; l < 5; ++l) {
    const auto& link = internet.topology().link(l);
    const auto r1 = internet.border_router(link.a, l);
    const auto r2 = internet.border_router(link.a, l);
    EXPECT_EQ(r1, r2);
    EXPECT_LT(r1, internet.igp(link.a).router_count());
  }
}

TEST(Internet, FqdnEncodesRouterAndAs) {
  Internet internet(small_config(), quiet(), 11);
  EXPECT_EQ(internet.router_fqdn(5, 2), "r2.as7005.net");
}

TEST(Internet, LinkFailureReroutesTraceroute) {
  ChurnRates rates = quiet();
  Internet internet(small_config(), rates, 12);
  const AsId source = 34;
  const AsId target = 3;
  auto& routes = internet.routes_to(target);
  const auto original_path = routes.path(source);
  ASSERT_GE(original_path.size(), 2u);
  (void)internet.traceroute(source, target);
  // Internet::advance with zero rates never fails links; verify the cache
  // is at least consistent across calls.
  const auto t1 = internet.traceroute(source, target);
  const auto t2 = internet.traceroute(source, target);
  EXPECT_EQ(t1.hops, t2.hops);
}

}  // namespace
}  // namespace infilter::routing

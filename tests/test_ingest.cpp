// Tests for the threaded live-ingest subsystem (ingest/ingest.h): pooled
// buffers, shed accounting, drain semantics, receiver-direct dispatch
// (each receiver decodes inline and dispatches as its own producer), and
// -- the load-bearing one -- verdict equivalence with the serial
// LiveCollector path over the same datagram stream.

#include "ingest/ingest.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <thread>

#include "dagflow/dagflow.h"
#include "flowtools/udp.h"
#include "traffic/attacks.h"
#include "traffic/normal.h"

namespace infilter::ingest {
namespace {

using namespace std::chrono_literals;

std::vector<netflow::V5Record> training_records(std::uint64_t seed) {
  traffic::NormalTrafficModel model;
  util::Rng rng{seed};
  const auto trace = model.generate(600, 0, rng);
  dagflow::Dagflow replayer(
      dagflow::DagflowConfig{},
      dagflow::AddressPool::from_subblocks({*net::SubBlock::parse("1a")}), seed);
  std::vector<netflow::V5Record> records;
  for (const auto& labeled : replayer.replay(trace)) records.push_back(labeled.record);
  return records;
}

/// Normal traffic from source 0's own Table 3 blocks followed by a spoofed
/// Slammer sweep, exported as v5 datagrams -- a stream exercising every
/// verdict class (legal, suspect, attack) once eia_range(0) is preloaded.
std::vector<std::vector<std::uint8_t>> mixed_datagrams(std::size_t* flow_count) {
  traffic::NormalTrafficModel model;
  util::Rng rng{21};
  std::vector<std::vector<std::uint8_t>> datagrams;
  std::size_t flows = 0;
  {
    const auto trace = model.generate(150, 0, rng);
    dagflow::Dagflow source(
        dagflow::DagflowConfig{},
        dagflow::AddressPool::from_allocation(dagflow::make_allocation(10, 100, 0, 0)[0]),
        9);
    const auto labeled = source.replay(trace);
    flows += labeled.size();
    for (auto& datagram : source.export_datagrams(labeled, 1000)) {
      datagrams.push_back(std::move(datagram));
    }
  }
  {
    traffic::AttackConfig attack_config;
    attack_config.companion_fraction = 0;
    const auto worm =
        traffic::generate_attack(traffic::AttackKind::kSlammer, attack_config, 500, rng);
    dagflow::Dagflow attacker(
        dagflow::DagflowConfig{},
        dagflow::AddressPool::from_subblocks({*net::SubBlock::parse("70a")}), 10);
    const auto labeled = attacker.replay(worm);
    flows += labeled.size();
    for (auto& datagram : attacker.export_datagrams(labeled, 2000)) {
      datagrams.push_back(std::move(datagram));
    }
  }
  if (flow_count != nullptr) *flow_count = flows;
  return datagrams;
}

/// Waits (bounded) until the pipeline has accepted `expected` datagrams.
void wait_received(const IngestPipeline& pipeline, std::uint64_t expected) {
  for (int i = 0; i < 5000 && pipeline.stats().datagrams_received < expected; ++i) {
    std::this_thread::sleep_for(1ms);
  }
}

TEST(IngestPipeline, RejectsEmptyPortList) {
  auto pipeline = IngestPipeline::create(
      IngestConfig{}, [](std::span<const runtime::FlowItem> items, int) {
        return items.size();
      });
  EXPECT_FALSE(pipeline.has_value());
}

TEST(IngestPipeline, RejectsMismatchedIngressIds) {
  IngestConfig config;
  config.ports = {0, 0};
  config.ingress_ids = {9001};  // not parallel to ports
  auto pipeline = IngestPipeline::create(
      config,
      [](std::span<const runtime::FlowItem> items, int) { return items.size(); });
  EXPECT_FALSE(pipeline.has_value());
}

TEST(IngestPipeline, PooledBuffersAreReusedAcrossManyDatagrams) {
  // 8 buffers, >100 datagrams: every arena slot must make many full
  // receive -> decode -> recycle cycles for the counts to come out, and
  // nothing may be lost along the way.
  std::atomic<std::uint64_t> dispatched{0};
  IngestConfig config;
  config.ports = {0};
  config.arena_slots = 8;
  config.recv_batch = 1;  // also exercises the receive_into() fallback path
  auto pipeline = IngestPipeline::create(
      config, [&dispatched](std::span<const runtime::FlowItem> items, int) {
        dispatched.fetch_add(items.size(), std::memory_order_relaxed);
        return items.size();
      });
  ASSERT_TRUE(pipeline.has_value()) << pipeline.error().message;

  auto sender = flowtools::UdpSender::create();
  ASSERT_TRUE(sender.has_value());
  std::size_t flows = 0;
  const auto datagrams = mixed_datagrams(&flows);
  const auto port = (*pipeline)->ports()[0];
  // Replay the stream 25 times: far more datagrams than slots, so the
  // counts only come out if recycled buffers really are reusable.
  constexpr std::size_t kRounds = 25;
  const std::size_t total = datagrams.size() * kRounds;
  ASSERT_GT(total, 20 * config.arena_slots);
  for (std::size_t round = 0; round < kRounds; ++round) {
    for (const auto& datagram : datagrams) {
      ASSERT_TRUE(sender->send(port, datagram).has_value());
    }
    // Keep the kernel queue shallow; overload policy is exercised elsewhere.
    wait_received(**pipeline, datagrams.size() * (round + 1));
  }
  (*pipeline)->drain();

  const auto stats = (*pipeline)->stats();
  EXPECT_EQ(stats.datagrams_received, total);
  EXPECT_EQ(stats.datagrams_decoded, total);
  EXPECT_EQ(stats.datagrams_malformed, 0u);
  EXPECT_EQ(stats.dropped_oldest, 0u);
  EXPECT_EQ(stats.records_decoded, flows * kRounds);
  EXPECT_EQ(stats.records_dispatched, flows * kRounds);
  EXPECT_EQ(dispatched.load(), flows * kRounds);
  // Receiver-direct dispatch has no internal queue between receive and
  // decode, so the old queued/free-buffer gauges are gone from the scrape.
  const auto snapshot = (*pipeline)->snapshot();
  EXPECT_EQ(snapshot.find("infilter_ingest_queued"), nullptr);
  EXPECT_EQ(snapshot.find("infilter_ingest_free_buffers"), nullptr);
}

TEST(IngestPipeline, MalformedAndZeroLengthDatagramsAreCountedNotFatal) {
  IngestConfig config;
  config.ports = {0};
  auto pipeline = IngestPipeline::create(
      config,
      [](std::span<const runtime::FlowItem> items, int) { return items.size(); });
  ASSERT_TRUE(pipeline.has_value()) << pipeline.error().message;
  auto sender = flowtools::UdpSender::create();
  ASSERT_TRUE(sender.has_value());
  const auto port = (*pipeline)->ports()[0];

  ASSERT_TRUE(sender->send(port, {}).has_value());  // zero-length: legal UDP
  const std::vector<std::uint8_t> junk(64, 0xEE);
  ASSERT_TRUE(sender->send(port, junk).has_value());
  // A valid datagram behind the malformed ones must still get through.
  std::size_t flows = 0;
  const auto valid = mixed_datagrams(&flows);
  ASSERT_TRUE(sender->send(port, valid.front()).has_value());

  wait_received(**pipeline, 3);
  (*pipeline)->drain();
  const auto stats = (*pipeline)->stats();
  EXPECT_EQ(stats.datagrams_received, 3u);
  EXPECT_EQ(stats.datagrams_malformed, 2u);
  EXPECT_EQ(stats.datagrams_decoded, 1u);
  EXPECT_GT(stats.records_dispatched, 0u);
}

/// One-record export datagram with a caller-chosen marker and sequence --
/// small enough that several fit in one recvmmsg() batch.
std::vector<std::uint8_t> marked_datagram(std::uint16_t marker,
                                          std::uint32_t sequence = 0) {
  netflow::V5Record record;
  record.src_ip = net::IPv4Address{10, 0, 0, 1};
  record.dst_ip = net::IPv4Address{10, 0, 0, 2};
  record.proto = 6;
  record.src_port = marker;
  record.dst_port = 80;
  netflow::V5Header header;
  header.flow_sequence = sequence;
  return netflow::encode(header, std::span(&record, 1));
}

TEST(IngestPipeline, TruncatedDatagramMidBatchKeepsSlotCorrespondence) {
  // Regression: in the recvmmsg path, recycling a truncated slot while the
  // pop loop was still consuming the free-list suffix handed every later
  // message in the batch the wrong arena buffer. Park the receiver
  // (quiesce) and queue an interleaved valid/oversized pattern in the
  // kernel so it picks the pattern up in full batches on resume.
  std::mutex mutex;
  std::vector<std::uint16_t> markers;
  IngestConfig config;
  config.ports = {0};
  config.arena_slots = 8;
  config.recv_batch = 8;
  auto pipeline = IngestPipeline::create(
      config, [&](std::span<const runtime::FlowItem> items, int) {
        std::lock_guard lock(mutex);
        for (const auto& item : items) markers.push_back(item.record.src_port);
        return items.size();
      });
  ASSERT_TRUE(pipeline.has_value()) << pipeline.error().message;
  auto sender = flowtools::UdpSender::create();
  ASSERT_TRUE(sender.has_value());
  const auto port = (*pipeline)->ports()[0];

  std::vector<std::uint16_t> expected;
  const std::vector<std::uint8_t> oversized(2 * config.slot_bytes, 0xEE);
  (*pipeline)->quiesce([&] {
    // The receiver is parked between batches, so everything sent inside
    // the quiesce window accumulates in the kernel queue and comes out in
    // full recvmmsg() batches on resume.
    for (std::uint16_t i = 0; i < 8; ++i) {
      ASSERT_TRUE(sender->send(port, marked_datagram(100 + i)).has_value());
      expected.push_back(100 + i);
    }
    std::this_thread::sleep_for(100ms);
    // Oversized datagrams interleaved between valid ones: on resume the
    // receiver recvmmsg()s the mix as whole batches.
    for (std::uint16_t i = 0; i < 4; ++i) {
      if (i == 1 || i == 3) {
        ASSERT_TRUE(sender->send(port, oversized).has_value());
      }
      ASSERT_TRUE(sender->send(port, marked_datagram(200 + i)).has_value());
      expected.push_back(200 + i);
    }
  });

  wait_received(**pipeline, 12);  // truncated datagrams are not "accepted"
  (*pipeline)->drain();
  const auto stats = (*pipeline)->stats();
  EXPECT_EQ(stats.datagrams_received, 12u);
  EXPECT_EQ(stats.datagrams_truncated, 2u);
  // The load-bearing assertions: a slot mix-up decodes the truncated
  // junk in place of a valid datagram behind it in the batch.
  EXPECT_EQ(stats.datagrams_malformed, 0u);
  EXPECT_EQ(stats.datagrams_decoded, 12u);
  EXPECT_EQ(stats.records_dispatched, 12u);
  std::lock_guard lock(mutex);
  EXPECT_EQ(markers, expected);  // right bytes, right order
}

TEST(IngestPipeline, SequenceGapAccountingSurvivesWraparound) {
  IngestConfig config;
  config.ports = {0};
  auto pipeline = IngestPipeline::create(
      config,
      [](std::span<const runtime::FlowItem> items, int) { return items.size(); });
  ASSERT_TRUE(pipeline.has_value()) << pipeline.error().message;
  auto sender = flowtools::UdpSender::create();
  ASSERT_TRUE(sender.has_value());
  const auto port = (*pipeline)->ports()[0];

  // One record per datagram: expected next sequence is previous + 1.
  ASSERT_TRUE(sender->send(port, marked_datagram(1, 0xFFFFFFFEu)).has_value());
  ASSERT_TRUE(sender->send(port, marked_datagram(2, 0xFFFFFFFFu)).has_value());  // contiguous
  // Expected next is 0 (2^32 wrap); claiming 4 means 4 flows lost.
  ASSERT_TRUE(sender->send(port, marked_datagram(3, 4)).has_value());
  ASSERT_TRUE(sender->send(port, marked_datagram(4, 5)).has_value());  // contiguous
  // Exporter restart: a large backward jump rebases without a bogus gap.
  ASSERT_TRUE(sender->send(port, marked_datagram(5, 0)).has_value());

  wait_received(**pipeline, 5);
  (*pipeline)->drain();
  const auto stats = (*pipeline)->stats();
  EXPECT_EQ(stats.datagrams_decoded, 5u);
  EXPECT_EQ(stats.sequence_gaps, 4u);
}

TEST(IngestPipeline, StopConcurrentWithQuiesceDoesNotDeadlock) {
  // Regression: stop() tearing the receivers down while quiesce() waited
  // for them to park stranded the quiesce forever. They now serialize on
  // the quiesce mutex, and post-stop quiesces take the stopped fast path.
  IngestConfig config;
  config.ports = {0};
  auto pipeline = IngestPipeline::create(
      config,
      [](std::span<const runtime::FlowItem> items, int) { return items.size(); });
  ASSERT_TRUE(pipeline.has_value()) << pipeline.error().message;

  std::atomic<int> ran{0};
  std::thread worker([&] {
    for (int i = 0; i < 50; ++i) {
      (*pipeline)->quiesce([&] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
  });
  std::this_thread::sleep_for(1ms);
  (*pipeline)->stop();
  worker.join();
  EXPECT_EQ(ran.load(), 50);
}

TEST(IngestPipeline, RefusedDispatchIsShedAndAccountedExactly) {
  // Receiver-direct dispatch sheds at exactly one place: the dispatcher
  // refusing records (a kDrop runtime with full rings). A dispatcher that
  // accepts only every other record must leave decoded ==
  // dispatched + shed, with nothing silently lost.
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> offered{0};
  IngestConfig config;
  config.ports = {0};
  auto pipeline = IngestPipeline::create(
      config, [&](std::span<const runtime::FlowItem> items, int) {
        offered.fetch_add(items.size(), std::memory_order_relaxed);
        const auto take = items.size() / 2;
        accepted.fetch_add(take, std::memory_order_relaxed);
        return take;
      });
  ASSERT_TRUE(pipeline.has_value()) << pipeline.error().message;
  auto sender = flowtools::UdpSender::create();
  ASSERT_TRUE(sender.has_value());
  const auto port = (*pipeline)->ports()[0];

  std::size_t flows = 0;
  const auto datagrams = mixed_datagrams(&flows);
  for (const auto& datagram : datagrams) {
    ASSERT_TRUE(sender->send(port, datagram).has_value());
  }
  wait_received(**pipeline, datagrams.size());
  (*pipeline)->drain();
  const auto stats = (*pipeline)->stats();
  EXPECT_EQ(stats.datagrams_received, datagrams.size());
  EXPECT_EQ(stats.records_decoded, flows);
  EXPECT_EQ(stats.records_decoded, stats.records_dispatched + stats.records_shed);
  EXPECT_GT(stats.records_shed, 0u);
  EXPECT_EQ(stats.records_dispatched, accepted.load());
  EXPECT_EQ(stats.records_decoded, offered.load());
  // The legacy oldest-first shed path is gone; its counter stays at zero.
  EXPECT_EQ(stats.dropped_oldest, 0u);
}

TEST(IngestPipeline, DrainMeansDispatched) {
  std::atomic<std::uint64_t> dispatched{0};
  IngestConfig config;
  config.ports = {0};
  config.dispatch_batch = 1 << 16;  // huge batch: drain must force the flush
  auto pipeline = IngestPipeline::create(
      config, [&dispatched](std::span<const runtime::FlowItem> items, int) {
        dispatched.fetch_add(items.size(), std::memory_order_relaxed);
        return items.size();
      });
  ASSERT_TRUE(pipeline.has_value()) << pipeline.error().message;
  auto sender = flowtools::UdpSender::create();
  ASSERT_TRUE(sender.has_value());
  const auto port = (*pipeline)->ports()[0];

  std::size_t flows = 0;
  const auto datagrams = mixed_datagrams(&flows);
  for (const auto& datagram : datagrams) {
    ASSERT_TRUE(sender->send(port, datagram).has_value());
  }
  wait_received(**pipeline, datagrams.size());
  (*pipeline)->drain();
  // drain() promises "handed to the dispatcher", not merely "decoded":
  // immediately after it returns the dispatch count is complete, even
  // though the batch threshold was never reached.
  EXPECT_EQ(dispatched.load(), flows);

  // stop() is phase 1 of shutdown and leaves the totals unchanged.
  (*pipeline)->stop();
  EXPECT_EQ((*pipeline)->stats().records_dispatched, flows);
}

TEST(IngestPipeline, TagsAreMonotoneInSocketOrder) {
  std::mutex mutex;
  std::vector<std::uint64_t> tags;
  IngestConfig config;
  config.ports = {0};
  auto pipeline = IngestPipeline::create(
      config, [&](std::span<const runtime::FlowItem> items, int) {
        std::lock_guard lock(mutex);
        for (const auto& item : items) tags.push_back(item.tag);
        return items.size();
      });
  ASSERT_TRUE(pipeline.has_value()) << pipeline.error().message;
  auto sender = flowtools::UdpSender::create();
  ASSERT_TRUE(sender.has_value());
  std::size_t flows = 0;
  const auto datagrams = mixed_datagrams(&flows);
  for (const auto& datagram : datagrams) {
    ASSERT_TRUE(sender->send((*pipeline)->ports()[0], datagram).has_value());
  }
  wait_received(**pipeline, datagrams.size());
  (*pipeline)->drain();

  std::lock_guard lock(mutex);
  ASSERT_EQ(tags.size(), flows);
  // One socket, one receiver: the tag sequence is 0..n-1 in kernel
  // receive order -- the join key the verdict-equivalence test relies on.
  for (std::size_t i = 0; i < tags.size(); ++i) {
    ASSERT_EQ(tags[i], i) << "at index " << i;
  }
}

TEST(IngestPipeline, TagsArePartitionedAndMonotonePerReceiver) {
  // Several receivers stamp tags concurrently: receiver r owns the tag
  // block starting at r << 48 (receiver 0 starts at 0 so the single-
  // receiver join keys are unchanged), and within a receiver the tags
  // stay strictly monotone in its own dispatch order.
  std::mutex mutex;
  std::map<int, std::vector<std::uint64_t>> by_producer;
  IngestConfig config;
  config.ports = {0, 0, 0};
  config.receiver_threads = 3;
  auto pipeline = IngestPipeline::create(
      config, [&](std::span<const runtime::FlowItem> items, int producer) {
        std::lock_guard lock(mutex);
        auto& tags = by_producer[producer];
        for (const auto& item : items) tags.push_back(item.tag);
        return items.size();
      });
  ASSERT_TRUE(pipeline.has_value()) << pipeline.error().message;
  EXPECT_EQ((*pipeline)->receiver_count(), 3u);
  auto sender = flowtools::UdpSender::create();
  ASSERT_TRUE(sender.has_value());
  const auto ports = (*pipeline)->ports();
  std::size_t flows = 0;
  const auto datagrams = mixed_datagrams(&flows);
  std::uint64_t sent = 0;
  for (std::size_t i = 0; i < datagrams.size(); ++i) {
    ASSERT_TRUE(sender->send(ports[i % ports.size()], datagrams[i]).has_value());
    ++sent;
    while ((*pipeline)->stats().datagrams_received + 48 < sent) {
      std::this_thread::sleep_for(100us);
    }
  }
  wait_received(**pipeline, sent);
  (*pipeline)->drain();

  std::lock_guard lock(mutex);
  std::size_t total = 0;
  for (const auto& [producer, tags] : by_producer) {
    ASSERT_GE(producer, 0);
    ASSERT_LT(producer, 3);
    total += tags.size();
    const std::uint64_t base =
        producer == 0 ? 0 : std::uint64_t{static_cast<std::uint64_t>(producer)} << 48;
    for (std::size_t i = 0; i < tags.size(); ++i) {
      EXPECT_EQ(tags[i], base + i) << "producer " << producer << " index " << i;
    }
  }
  EXPECT_EQ(total, flows);
}

TEST(IngestPipeline, VerdictsBitIdenticalToSerialLiveCollector) {
  std::size_t flows = 0;
  const auto datagrams = mixed_datagrams(&flows);
  const auto training = training_records(7);

  core::EngineConfig engine_config;
  engine_config.cluster.bits_per_feature = 48;
  engine_config.seed = 5;

  // -- Path A: serial. LiveCollector receives the stream; one engine
  // processes the capture in arrival order. --
  auto collector = flowtools::LiveCollector::bind({0});
  ASSERT_TRUE(collector.has_value()) << collector.error().message;
  const auto serial_port = collector->ports()[0];
  auto sender = flowtools::UdpSender::create();
  ASSERT_TRUE(sender.has_value());
  for (const auto& datagram : datagrams) {
    ASSERT_TRUE(sender->send(serial_port, datagram).has_value());
  }
  const auto collected = collector->collect(flows, 5000);
  ASSERT_TRUE(collected.has_value()) << collected.error().message;
  ASSERT_EQ(collector->capture().flows().size(), flows);

  core::InFilterEngine serial(engine_config);
  for (const auto& block : dagflow::eia_range(0).expand()) {
    serial.add_expected(serial_port, block.prefix());
  }
  serial.train(training);
  std::vector<core::Verdict> serial_verdicts;
  serial_verdicts.reserve(flows);
  for (const auto& flow : collector->capture().flows()) {
    serial_verdicts.push_back(
        serial.process(flow.record, flow.arrival_port, flow.record.last));
  }

  // -- Path B: the same datagram bytes through the threaded pipeline into
  // a 2-shard runtime. ingress_ids pins the ephemeral socket to path A's
  // ingress identity, so the EIA tables see identical keys; the NNS probe
  // RNG is a pure function of (seed, record); and one socket through one
  // receiver preserves arrival order, joined back via the tag. --
  runtime::RuntimeConfig runtime_config;
  runtime_config.shards = 2;
  runtime_config.engine = engine_config;
  std::mutex mutex;
  std::map<std::uint64_t, core::Verdict> threaded_verdicts;
  runtime::ShardedRuntime runtime(
      runtime_config, nullptr,
      [&](const runtime::FlowItem& item, const core::Verdict& verdict) {
        std::lock_guard lock(mutex);
        threaded_verdicts.emplace(item.tag, verdict);
      });
  for (const auto& block : dagflow::eia_range(0).expand()) {
    runtime.add_expected(serial_port, block.prefix());
  }
  runtime.train(training);

  IngestConfig ingest_config;
  ingest_config.ports = {0};
  ingest_config.ingress_ids = {serial_port};
  auto pipeline = IngestPipeline::create(ingest_config, runtime);
  ASSERT_TRUE(pipeline.has_value()) << pipeline.error().message;
  for (const auto& datagram : datagrams) {
    ASSERT_TRUE(sender->send((*pipeline)->ports()[0], datagram).has_value());
  }
  wait_received(**pipeline, datagrams.size());
  (*pipeline)->stop();  // phase 1: everything accepted reaches the runtime
  runtime.shutdown();   // phase 2: every dispatched flow gets its verdict

  ASSERT_EQ((*pipeline)->stats().records_dispatched, flows);
  std::lock_guard lock(mutex);
  ASSERT_EQ(threaded_verdicts.size(), flows);
  std::size_t serial_attacks = 0;
  for (std::size_t i = 0; i < flows; ++i) {
    const auto& expected = serial_verdicts[i];
    serial_attacks += expected.attack ? 1 : 0;
    const auto it = threaded_verdicts.find(i);
    ASSERT_NE(it, threaded_verdicts.end()) << "missing verdict for flow " << i;
    const auto& got = it->second;
    EXPECT_EQ(got.suspect, expected.suspect) << "flow " << i;
    EXPECT_EQ(got.attack, expected.attack) << "flow " << i;
    EXPECT_EQ(got.stage, expected.stage) << "flow " << i;
    ASSERT_EQ(got.nns.has_value(), expected.nns.has_value()) << "flow " << i;
    if (expected.nns.has_value()) {
      // Bit-identical NNS diagnostics, not just matching booleans.
      EXPECT_EQ(got.nns->anomalous, expected.nns->anomalous) << "flow " << i;
      EXPECT_EQ(got.nns->cluster, expected.nns->cluster) << "flow " << i;
      EXPECT_EQ(got.nns->distance, expected.nns->distance) << "flow " << i;
      EXPECT_EQ(got.nns->threshold, expected.nns->threshold) << "flow " << i;
    }
  }
  // The stream was built to light up the attack path -- make sure the
  // equality above compared something nontrivial.
  EXPECT_GT(serial_attacks, 0u);
}

TEST(IngestStress, MultiSocketMultiReceiverWithConcurrentQuiesce) {
  // The TSan-lane case: two receiver threads over three sockets, a
  // 2-shard runtime downstream, and the owner thread hammering the
  // drain/quiesce/stats/snapshot handshakes while traffic flows.
  runtime::RuntimeConfig runtime_config;
  runtime_config.shards = 2;
  runtime_config.producers = 2;  // one slot per receiver thread
  runtime_config.engine.mode = core::EngineMode::kBasic;  // no training needed
  runtime::ShardedRuntime runtime(runtime_config);

  IngestConfig config;
  config.ports = {0, 0, 0};
  config.receiver_threads = 2;
  config.arena_slots = 64;
  auto pipeline = IngestPipeline::create(config, runtime);
  ASSERT_TRUE(pipeline.has_value()) << pipeline.error().message;
  EXPECT_EQ((*pipeline)->receiver_count(), 2u);
  const auto ports = (*pipeline)->ports();

  auto sender = flowtools::UdpSender::create();
  ASSERT_TRUE(sender.has_value());
  std::size_t flows = 0;
  const auto datagrams = mixed_datagrams(&flows);
  std::uint64_t sent = 0;
  for (std::size_t i = 0; i < datagrams.size(); ++i) {
    ASSERT_TRUE(sender->send(ports[i % ports.size()], datagrams[i]).has_value());
    ++sent;
    if (i % 16 == 0) {
      // Exercise the quiesce/flush handshake mid-stream, with both
      // receivers dispatching as independent runtime producers.
      (*pipeline)->quiesce([&] { runtime.flush(); });
      (void)(*pipeline)->stats();
      (void)(*pipeline)->snapshot();
    }
    // Loose pacing so the tiny arenas never force kernel-queue drops.
    while ((*pipeline)->stats().datagrams_received + 48 < sent) {
      std::this_thread::sleep_for(100us);
    }
  }
  wait_received(**pipeline, sent);
  (*pipeline)->quiesce([&] { runtime.flush(); });
  const auto stats = (*pipeline)->stats();
  EXPECT_EQ(stats.datagrams_received, sent);
  EXPECT_EQ(stats.datagrams_decoded, sent);
  EXPECT_EQ(stats.records_dispatched, flows);
  EXPECT_EQ(runtime.stats().processed, flows);
  (*pipeline)->stop();
  runtime.shutdown();
}

}  // namespace
}  // namespace infilter::ingest

// Tests for the flow-capture collector (flowtools/capture.h).

#include "flowtools/capture.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace infilter::flowtools {
namespace {

netflow::V5Record record(std::uint32_t salt) {
  netflow::V5Record r;
  r.src_ip = net::IPv4Address{salt * 2654435761u};
  r.dst_ip = net::IPv4Address{100, 64, 0, 1};
  r.proto = 6;
  r.src_port = static_cast<std::uint16_t>(1024 + salt);
  r.dst_port = 80;
  r.packets = 1 + salt;
  r.bytes = 40 * (1 + salt);
  r.first = 100 * salt;
  r.last = 100 * salt + 50;
  return r;
}

std::vector<std::uint8_t> datagram(std::span<const netflow::V5Record> records,
                                   std::uint32_t sequence = 0,
                                   std::uint8_t engine = 0) {
  netflow::V5Header header;
  header.flow_sequence = sequence;
  header.engine_id = engine;
  header.sys_uptime_ms = 999;
  return netflow::encode(header, records);
}

TEST(FlowCapture, IngestStoresRecordsWithPort) {
  FlowCapture capture;
  const std::vector records{record(1), record(2)};
  const auto result = capture.ingest(datagram(records), 9003);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, 2u);
  ASSERT_EQ(capture.flows().size(), 2u);
  EXPECT_EQ(capture.flows()[0].record, records[0]);
  EXPECT_EQ(capture.flows()[0].arrival_port, 9003);
  EXPECT_EQ(capture.flows()[0].export_time_ms, 999u);
}

TEST(FlowCapture, MalformedDatagramCountedAndDropped) {
  FlowCapture capture;
  const std::vector<std::uint8_t> garbage(40, 0xAB);
  const auto result = capture.ingest(garbage, 9001);
  EXPECT_FALSE(result.has_value());
  EXPECT_EQ(capture.datagrams_received(), 1u);
  EXPECT_EQ(capture.datagrams_malformed(), 1u);
  EXPECT_TRUE(capture.flows().empty());
}

TEST(FlowCapture, DetectsSequenceGaps) {
  FlowCapture capture;
  const std::vector first{record(1), record(2)};
  ASSERT_TRUE(capture.ingest(datagram(first, 0), 9001).has_value());
  // Next datagram claims sequence 10: 8 flows lost.
  const std::vector second{record(3)};
  ASSERT_TRUE(capture.ingest(datagram(second, 10), 9001).has_value());
  EXPECT_EQ(capture.sequence_gaps(), 8u);
}

TEST(FlowCapture, NoGapOnContiguousSequence) {
  FlowCapture capture;
  ASSERT_TRUE(capture.ingest(datagram(std::vector{record(1), record(2)}, 0), 9001)
                  .has_value());
  ASSERT_TRUE(capture.ingest(datagram(std::vector{record(3)}, 2), 9001).has_value());
  EXPECT_EQ(capture.sequence_gaps(), 0u);
}

TEST(FlowCapture, SequenceGapSpansWraparound) {
  FlowCapture capture;
  ASSERT_TRUE(
      capture.ingest(datagram(std::vector{record(1)}, 0xFFFFFFFFu), 9001).has_value());
  // Next expected sequence is 0 (2^32 wrap); claiming 6 means 6 flows lost.
  ASSERT_TRUE(capture.ingest(datagram(std::vector{record(2)}, 6), 9001).has_value());
  EXPECT_EQ(capture.sequence_gaps(), 6u);
  // An exporter restart (large backward jump) rebases without a bogus gap.
  ASSERT_TRUE(capture.ingest(datagram(std::vector{record(3)}, 0), 9001).has_value());
  EXPECT_EQ(capture.sequence_gaps(), 6u);
}

TEST(FlowCapture, SequenceTrackedPerPort) {
  FlowCapture capture;
  ASSERT_TRUE(capture.ingest(datagram(std::vector{record(1)}, 0), 9001).has_value());
  // A different port starts its own sequence space; no gap.
  ASSERT_TRUE(capture.ingest(datagram(std::vector{record(2)}, 500), 9002).has_value());
  EXPECT_EQ(capture.sequence_gaps(), 0u);
}

TEST(FlowCapture, SaveLoadRoundTrip) {
  FlowCapture capture;
  for (std::uint32_t i = 0; i < 40; ++i) {
    ASSERT_TRUE(capture
                    .ingest(datagram(std::vector{record(i)}, i,
                                     static_cast<std::uint8_t>(i % 3)),
                            static_cast<std::uint16_t>(9001 + i % 4))
                    .has_value());
  }
  const std::string path =
      (std::filesystem::temp_directory_path() / "infilter_capture_test.bin").string();
  const auto saved = capture.save(path);
  ASSERT_TRUE(saved.has_value()) << saved.error().message;
  EXPECT_EQ(*saved, 40u);

  FlowCapture loaded;
  const auto count = loaded.load(path);
  ASSERT_TRUE(count.has_value()) << count.error().message;
  EXPECT_EQ(*count, 40u);
  ASSERT_EQ(loaded.flows().size(), capture.flows().size());
  for (std::size_t i = 0; i < loaded.flows().size(); ++i) {
    EXPECT_EQ(loaded.flows()[i].record, capture.flows()[i].record) << i;
    EXPECT_EQ(loaded.flows()[i].arrival_port, capture.flows()[i].arrival_port) << i;
  }
  std::remove(path.c_str());
}

TEST(FlowCapture, LoadRejectsMissingFile) {
  FlowCapture capture;
  EXPECT_FALSE(capture.load("/nonexistent/path/capture.bin").has_value());
}

TEST(FlowCapture, LoadRejectsBadMagic) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "infilter_badmagic.bin").string();
  {
    std::ofstream out(path, std::ios::binary);
    const char junk[16] = "not a capture!!";
    out.write(junk, sizeof junk);
  }
  FlowCapture capture;
  EXPECT_FALSE(capture.load(path).has_value());
  std::remove(path.c_str());
}

TEST(FlowCapture, ClearResetsEverything) {
  FlowCapture capture;
  ASSERT_TRUE(capture.ingest(datagram(std::vector{record(1)}), 9001).has_value());
  capture.clear();
  EXPECT_TRUE(capture.flows().empty());
  EXPECT_EQ(capture.datagrams_received(), 0u);
  EXPECT_EQ(capture.sequence_gaps(), 0u);
}

}  // namespace
}  // namespace infilter::flowtools

// Tests for the router-side flow cache (netflow/flow_cache.h): the four
// expiry conditions of Section 5.1.1 plus aggregation behaviour.

#include "netflow/flow_cache.h"

#include <gtest/gtest.h>

namespace infilter::netflow {
namespace {

using util::kMinute;
using util::kSecond;

PacketObservation packet(net::IPv4Address src, std::uint16_t src_port,
                         util::TimeMs time, std::uint32_t bytes = 100,
                         std::uint8_t flags = 0) {
  PacketObservation p;
  p.key.src_ip = src;
  p.key.dst_ip = net::IPv4Address{100, 64, 0, 1};
  p.key.proto = static_cast<std::uint8_t>(IpProto::kTcp);
  p.key.src_port = src_port;
  p.key.dst_port = 80;
  p.bytes = bytes;
  p.tcp_flags = flags;
  p.time = time;
  return p;
}

FlowCacheConfig small_config() {
  FlowCacheConfig c;
  c.idle_timeout = 15 * kSecond;
  c.active_timeout = 30 * kMinute;
  c.max_entries = 8;
  c.full_watermark = 0.75;
  return c;
}

TEST(FlowCache, AggregatesPacketsIntoOneFlow) {
  FlowCache cache{small_config()};
  const auto src = net::IPv4Address{1, 2, 3, 4};
  cache.observe(packet(src, 5000, 1000, 100));
  cache.observe(packet(src, 5000, 1200, 200));
  cache.observe(packet(src, 5000, 1400, 300));
  EXPECT_EQ(cache.active_flows(), 1u);

  auto records = cache.flush(2000);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records.front().packets, 3u);
  EXPECT_EQ(records.front().bytes, 600u);
  EXPECT_EQ(records.front().first, 1000u);
  EXPECT_EQ(records.front().last, 1400u);
}

TEST(FlowCache, DistinctKeysDistinctFlows) {
  FlowCache cache{small_config()};
  cache.observe(packet(net::IPv4Address{1, 2, 3, 4}, 5000, 1000));
  cache.observe(packet(net::IPv4Address{1, 2, 3, 4}, 5001, 1000));
  cache.observe(packet(net::IPv4Address{1, 2, 3, 5}, 5000, 1000));
  EXPECT_EQ(cache.active_flows(), 3u);
}

TEST(FlowCache, IdleTimeoutExpires) {
  FlowCache cache{small_config()};
  cache.observe(packet(net::IPv4Address{1, 2, 3, 4}, 5000, 1000));
  cache.advance(1000 + 14 * kSecond);
  EXPECT_EQ(cache.active_flows(), 1u);  // not yet idle long enough
  cache.advance(1000 + 15 * kSecond);
  EXPECT_EQ(cache.active_flows(), 0u);
  EXPECT_EQ(cache.drain_expired().size(), 1u);
}

TEST(FlowCache, ActivityResetsIdleClock) {
  FlowCache cache{small_config()};
  const auto src = net::IPv4Address{1, 2, 3, 4};
  cache.observe(packet(src, 5000, 1000));
  cache.observe(packet(src, 5000, 1000 + 10 * kSecond));
  cache.advance(1000 + 20 * kSecond);  // 10s after last packet
  EXPECT_EQ(cache.active_flows(), 1u);
}

TEST(FlowCache, ActiveTimeoutExpiresChattyFlow) {
  FlowCache cache{small_config()};
  const auto src = net::IPv4Address{1, 2, 3, 4};
  // Keep the flow busy past the active timeout.
  util::TimeMs t = 0;
  while (t < 30 * kMinute) {
    cache.observe(packet(src, 5000, t));
    t += 5 * kSecond;
  }
  cache.observe(packet(src, 5000, t));
  // The observe at t >= active_timeout expires the entry immediately.
  EXPECT_EQ(cache.active_flows(), 0u);
  const auto records = cache.drain_expired();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_GE(records.front().duration_ms(), 30 * kMinute);
}

TEST(FlowCache, TcpFinExpiresImmediately) {
  FlowCache cache{small_config()};
  const auto src = net::IPv4Address{1, 2, 3, 4};
  cache.observe(packet(src, 5000, 1000, 100, tcpflags::kSyn));
  EXPECT_EQ(cache.active_flows(), 1u);
  cache.observe(packet(src, 5000, 1100, 100, tcpflags::kFin | tcpflags::kAck));
  EXPECT_EQ(cache.active_flows(), 0u);
  const auto records = cache.drain_expired();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records.front().packets, 2u);
  EXPECT_EQ(records.front().tcp_flags,
            tcpflags::kSyn | tcpflags::kFin | tcpflags::kAck);
}

TEST(FlowCache, TcpRstExpiresImmediately) {
  FlowCache cache{small_config()};
  cache.observe(packet(net::IPv4Address{1, 2, 3, 4}, 5000, 1000, 100, tcpflags::kRst));
  EXPECT_EQ(cache.active_flows(), 0u);
  EXPECT_EQ(cache.pending_exports(), 1u);
}

TEST(FlowCache, UdpIgnoresFlagBits) {
  FlowCacheConfig config = small_config();
  FlowCache cache{config};
  PacketObservation p = packet(net::IPv4Address{1, 2, 3, 4}, 5000, 1000);
  p.key.proto = static_cast<std::uint8_t>(IpProto::kUdp);
  p.tcp_flags = tcpflags::kFin;  // nonsense for UDP; must not expire
  cache.observe(p);
  EXPECT_EQ(cache.active_flows(), 1u);
}

TEST(FlowCache, CacheFullEvictsLeastRecentlyActive) {
  FlowCache cache{small_config()};  // max 8, watermark 0.75 -> evict above 6
  for (int i = 0; i < 8; ++i) {
    cache.observe(packet(net::IPv4Address{1, 2, 3, static_cast<std::uint8_t>(i)},
                         5000, 1000 + static_cast<util::TimeMs>(i)));
  }
  EXPECT_LE(cache.active_flows(), 7u);
  EXPECT_GT(cache.pending_exports(), 0u);
  // The evicted flows are the oldest ones.
  const auto records = cache.drain_expired();
  for (const auto& r : records) {
    EXPECT_LT(r.src_ip.octet(3), 4);
  }
}

TEST(FlowCache, FlushExpiresEverything) {
  FlowCache cache{small_config()};
  for (int i = 0; i < 5; ++i) {
    cache.observe(packet(net::IPv4Address{1, 2, 3, static_cast<std::uint8_t>(i)},
                         5000, 1000));
  }
  const auto records = cache.flush(2000);
  EXPECT_EQ(records.size(), 5u);
  EXPECT_EQ(cache.active_flows(), 0u);
  EXPECT_EQ(cache.pending_exports(), 0u);
}

TEST(FlowCache, RecordCarriesAttributionFields) {
  FlowCache cache{small_config()};
  PacketObservation p = packet(net::IPv4Address{1, 2, 3, 4}, 5000, 1000);
  p.src_as = 7003;
  p.dst_as = 7004;
  p.next_hop = net::IPv4Address{192, 0, 2, 9};
  cache.observe(p);
  const auto records = cache.flush(2000);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records.front().src_as, 7003);
  EXPECT_EQ(records.front().dst_as, 7004);
  EXPECT_EQ(records.front().next_hop, (net::IPv4Address{192, 0, 2, 9}));
}

TEST(FlowCache, DrainExpiredIsDestructive) {
  FlowCache cache{small_config()};
  cache.observe(packet(net::IPv4Address{1, 2, 3, 4}, 5000, 1000, 100, tcpflags::kRst));
  EXPECT_EQ(cache.drain_expired().size(), 1u);
  EXPECT_EQ(cache.drain_expired().size(), 0u);
}

}  // namespace
}  // namespace infilter::netflow

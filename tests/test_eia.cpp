// Tests for EIA sets and the per-ingress EIA table (core/eia.h).

#include "core/eia.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace infilter::core {
namespace {

net::IPv4Address ip(const char* text) { return *net::IPv4Address::parse(text); }
net::Prefix prefix(const char* text) { return *net::Prefix::parse(text); }

std::size_t bank_of(std::uint32_t key24) {
  return util::SplitMix64{key24}.next() % EiaTable::kPendingBanks;
}

/// A /24 key landing in the same pending bank as `with` (the bank hash is
/// the runtime's shard hash; searching beats re-deriving it in the test).
std::uint32_t colliding_slash24(std::uint32_t with) {
  for (std::uint32_t i = 1;; ++i) {
    const std::uint32_t key = with + (i << 8);
    if (bank_of(key) == bank_of(with)) return key;
  }
}

TEST(EiaSet, EmptyContainsNothing) {
  const EiaSet set;
  EXPECT_FALSE(set.contains(ip("1.2.3.4")));
  EXPECT_EQ(set.range_count(), 0u);
}

TEST(EiaSet, SinglePrefixMembership) {
  EiaSet set;
  set.add(prefix("10.0.0.0/8"));
  EXPECT_TRUE(set.contains(ip("10.0.0.0")));
  EXPECT_TRUE(set.contains(ip("10.255.255.255")));
  EXPECT_FALSE(set.contains(ip("9.255.255.255")));
  EXPECT_FALSE(set.contains(ip("11.0.0.0")));
  EXPECT_EQ(set.address_count(), std::uint64_t{1} << 24);
}

TEST(EiaSet, DisjointPrefixesKeepSeparateRanges) {
  EiaSet set;
  set.add(prefix("10.0.0.0/8"));
  set.add(prefix("20.0.0.0/8"));
  EXPECT_EQ(set.range_count(), 2u);
  EXPECT_TRUE(set.contains(ip("10.1.1.1")));
  EXPECT_TRUE(set.contains(ip("20.1.1.1")));
  EXPECT_FALSE(set.contains(ip("15.0.0.0")));
}

TEST(EiaSet, AdjacentPrefixesMerge) {
  EiaSet set;
  set.add(prefix("10.0.0.0/9"));
  set.add(prefix("10.128.0.0/9"));
  EXPECT_EQ(set.range_count(), 1u);
  EXPECT_EQ(set.address_count(), std::uint64_t{1} << 24);
}

TEST(EiaSet, OverlappingPrefixesMerge) {
  EiaSet set;
  set.add(prefix("10.0.0.0/8"));
  set.add(prefix("10.32.0.0/11"));  // contained
  EXPECT_EQ(set.range_count(), 1u);
  EXPECT_EQ(set.address_count(), std::uint64_t{1} << 24);
  set.add(prefix("8.0.0.0/7"));  // overlaps [8.0.0.0, 9.255.255.255]; adjacent to 10/8
  EXPECT_EQ(set.range_count(), 1u);
  EXPECT_TRUE(set.contains(ip("8.0.0.1")));
}

TEST(EiaSet, ManyInsertsOutOfOrder) {
  EiaSet set;
  // /24s inserted in shuffled order spanning 30.0.[0..63].0/24.
  for (int i = 63; i >= 0; i -= 2) {
    set.add(net::Prefix{net::IPv4Address{30, 0, static_cast<std::uint8_t>(i), 0}, 24});
  }
  for (int i = 0; i < 64; i += 2) {
    set.add(net::Prefix{net::IPv4Address{30, 0, static_cast<std::uint8_t>(i), 0}, 24});
  }
  EXPECT_EQ(set.range_count(), 1u);  // everything coalesces
  EXPECT_EQ(set.address_count(), 64u * 256u);
}

TEST(EiaSet, DuplicateAddIsIdempotent) {
  EiaSet set;
  set.add(prefix("10.0.0.0/8"));
  set.add(prefix("10.0.0.0/8"));
  EXPECT_EQ(set.range_count(), 1u);
  EXPECT_EQ(set.address_count(), std::uint64_t{1} << 24);
}

TEST(EiaSet, FullSpaceRange) {
  EiaSet set;
  set.add(prefix("0.0.0.0/0"));
  EXPECT_TRUE(set.contains(ip("0.0.0.0")));
  EXPECT_TRUE(set.contains(ip("255.255.255.255")));
  EXPECT_EQ(set.range_count(), 1u);
}

TEST(EiaSet, TopOfSpacePrefixMembership) {
  // Ranges ending at 255.255.255.255 exercise the r.last != ~0u guard:
  // "last + 1" would wrap to zero and break the insertion-window search.
  EiaSet set;
  set.add(prefix("255.255.255.0/24"));
  EXPECT_TRUE(set.contains(ip("255.255.255.0")));
  EXPECT_TRUE(set.contains(ip("255.255.255.255")));
  EXPECT_FALSE(set.contains(ip("255.255.254.255")));
  EXPECT_EQ(set.address_count(), 256u);
}

TEST(EiaSet, AdjacentBelowTopOfSpaceMerges) {
  EiaSet set;
  set.add(prefix("255.255.255.128/25"));  // ends at the very top
  set.add(prefix("255.255.255.0/25"));    // adjacent below
  EXPECT_EQ(set.range_count(), 1u);
  EXPECT_TRUE(set.contains(ip("255.255.255.255")));
  EXPECT_EQ(set.address_count(), 256u);
}

TEST(EiaSet, InsertBelowExistingTopOfSpaceRange) {
  // With a top-ending range already stored, inserting a disjoint lower
  // range must not be swallowed by a wrapped "last + 1 < first" compare.
  EiaSet set;
  set.add(prefix("255.255.255.255/32"));
  set.add(prefix("10.0.0.0/24"));
  EXPECT_EQ(set.range_count(), 2u);
  EXPECT_TRUE(set.contains(ip("10.0.0.1")));
  EXPECT_TRUE(set.contains(ip("255.255.255.255")));
  EXPECT_FALSE(set.contains(ip("255.255.255.254")));
  set.add(prefix("255.255.255.254/31"));  // merges into the top range only
  EXPECT_EQ(set.range_count(), 2u);
  EXPECT_TRUE(set.contains(ip("255.255.255.254")));
}

TEST(EiaSet, TopOfSpaceOverlapCoalesces) {
  EiaSet set;
  set.add(prefix("255.255.0.0/16"));
  set.add(prefix("255.0.0.0/8"));  // covers and extends below
  EXPECT_EQ(set.range_count(), 1u);
  EXPECT_EQ(set.address_count(), std::uint64_t{1} << 24);
  EXPECT_TRUE(set.contains(ip("255.255.255.255")));
}

TEST(EiaSet, ToCidrsRoundTripsTopOfSpace) {
  EiaSet set;
  set.add(prefix("255.255.255.0/24"));
  set.add(prefix("255.255.128.0/17"));
  const auto cidrs = set.to_cidrs();
  EiaSet rebuilt;
  for (const auto& p : cidrs) rebuilt.add(p);
  EXPECT_EQ(rebuilt.range_count(), set.range_count());
  EXPECT_EQ(rebuilt.address_count(), set.address_count());
  EXPECT_TRUE(rebuilt.contains(ip("255.255.255.255")));
}

TEST(EiaSet, ToCidrsRoundTripProperty) {
  // Pseudorandom prefixes (top-of-space biased), decomposed and re-added,
  // must reproduce the identical range structure.
  util::SplitMix64 rng{0xe1a5e7};
  for (int trial = 0; trial < 50; ++trial) {
    EiaSet set;
    for (int i = 0; i < 40; ++i) {
      const auto word = rng.next();
      const int length = static_cast<int>(word % 33);
      std::uint32_t base = static_cast<std::uint32_t>(word >> 32);
      if (i % 5 == 0) base |= 0xFFF00000u;  // bias toward the top of space
      const std::uint32_t mask =
          length == 0 ? 0u : ~std::uint32_t{0} << (32 - length);
      set.add(net::Prefix{net::IPv4Address{base & mask}, length});
    }
    EiaSet rebuilt;
    for (const auto& p : set.to_cidrs()) rebuilt.add(p);
    ASSERT_EQ(rebuilt.range_count(), set.range_count()) << "trial " << trial;
    ASSERT_EQ(rebuilt.address_count(), set.address_count()) << "trial " << trial;
    for (int probe = 0; probe < 200; ++probe) {
      const auto address = net::IPv4Address{static_cast<std::uint32_t>(rng.next())};
      ASSERT_EQ(rebuilt.contains(address), set.contains(address))
          << "trial " << trial << " @ " << address.to_string();
    }
  }
}

TEST(EiaTable, ExpectedLookupPerIngress) {
  EiaTable table;
  table.add_expected(9001, prefix("3.0.0.0/11"));
  table.add_expected(9002, prefix("3.32.0.0/11"));
  EXPECT_TRUE(table.is_expected(9001, ip("3.1.2.3")));
  EXPECT_FALSE(table.is_expected(9002, ip("3.1.2.3")));
  EXPECT_TRUE(table.is_expected(9002, ip("3.40.0.1")));
  EXPECT_FALSE(table.is_expected(9003, ip("3.1.2.3")));  // unknown ingress
}

TEST(EiaTable, ExpectedIngressFindsOwner) {
  EiaTable table;
  table.add_expected(9001, prefix("3.0.0.0/11"));
  table.add_expected(9002, prefix("3.32.0.0/11"));
  EXPECT_EQ(table.expected_ingress(ip("3.1.2.3")), std::optional<IngressId>{9001});
  EXPECT_EQ(table.expected_ingress(ip("3.40.0.1")), std::optional<IngressId>{9002});
  EXPECT_EQ(table.expected_ingress(ip("99.0.0.1")), std::nullopt);
}

TEST(EiaTable, ExpectedIngressPrefersLowestWhenShared) {
  EiaTable table;
  table.add_expected(9005, prefix("50.0.0.0/8"));
  table.add_expected(9001, prefix("50.0.0.0/8"));
  EXPECT_EQ(table.expected_ingress(ip("50.1.1.1")), std::optional<IngressId>{9001});
}

TEST(EiaTable, LearnsSlash24AfterThreshold) {
  EiaTableConfig config;
  config.learn_threshold = 5;
  EiaTable table(config);
  table.add_expected(9001, prefix("3.0.0.0/11"));

  const auto newcomer = ip("77.1.2.3");
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(table.observe_mismatch(9001, newcomer));
    EXPECT_FALSE(table.is_expected(9001, newcomer));
  }
  EXPECT_TRUE(table.observe_mismatch(9001, newcomer));  // 5th flow learns
  EXPECT_TRUE(table.is_expected(9001, newcomer));
  // The whole /24 was learned, but not the neighboring /24.
  EXPECT_TRUE(table.is_expected(9001, ip("77.1.2.250")));
  EXPECT_FALSE(table.is_expected(9001, ip("77.1.3.1")));
}

TEST(EiaTable, LearningIsPerIngress) {
  EiaTableConfig config;
  config.learn_threshold = 3;
  EiaTable table(config);
  const auto source = ip("88.5.5.5");
  table.observe_mismatch(9001, source);
  table.observe_mismatch(9001, source);
  table.observe_mismatch(9002, source);  // different ingress: separate counter
  EXPECT_FALSE(table.is_expected(9001, source));
  EXPECT_FALSE(table.is_expected(9002, source));
  EXPECT_TRUE(table.observe_mismatch(9001, source));
  EXPECT_TRUE(table.is_expected(9001, source));
  EXPECT_FALSE(table.is_expected(9002, source));
}

TEST(EiaTable, CounterKeyedBySlash24NotHost) {
  EiaTableConfig config;
  config.learn_threshold = 3;
  EiaTable table(config);
  // Three different hosts in one /24 accumulate on the same counter.
  table.observe_mismatch(9001, ip("66.1.1.1"));
  table.observe_mismatch(9001, ip("66.1.1.2"));
  EXPECT_TRUE(table.observe_mismatch(9001, ip("66.1.1.3")));
  EXPECT_TRUE(table.is_expected(9001, ip("66.1.1.200")));
}

TEST(EiaTable, FullPendingBankDecaysInsteadOfRefusing) {
  EiaTableConfig config;
  config.learn_threshold = 2;
  config.max_pending_counters = EiaTable::kPendingBanks;  // 1 counter per bank
  EiaTable table(config);
  const std::uint32_t first = 0x3C000000u;  // 60.0.0.0/24
  const std::uint32_t second = colliding_slash24(first);
  table.observe_mismatch(9001, net::IPv4Address{first + 1});
  EXPECT_EQ(table.stats().pending_rejected, 0u);
  // The newcomer finds its bank full: the once-seen occupant is halved to
  // zero and swept, and the newcomer gets a counter (pre-fix behavior was
  // a silent refusal that starved it forever).
  EXPECT_FALSE(table.observe_mismatch(9001, net::IPv4Address{second + 1}));
  EXPECT_EQ(table.stats().pending_rejected, 1u);
  EXPECT_TRUE(table.observe_mismatch(9001, net::IPv4Address{second + 2}));
  EXPECT_TRUE(table.is_expected(9001, net::IPv4Address{second + 9}));
}

TEST(EiaTable, FullPendingBankEvictsMinimumWhenDecayFreesNothing) {
  EiaTableConfig config;
  config.learn_threshold = 10;
  config.max_pending_counters = EiaTable::kPendingBanks;  // 1 counter per bank
  EiaTable table(config);
  const std::uint32_t occupant = 0x3D000000u;  // 61.0.0.0/24
  const std::uint32_t newcomer = colliding_slash24(occupant);
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(table.observe_mismatch(9001, net::IPv4Address{occupant + 1}));
  }
  // Halving 4 -> 2 leaves the bank full, so the minimum entry is evicted
  // and the newcomer still gets tracked.
  EXPECT_FALSE(table.observe_mismatch(9001, net::IPv4Address{newcomer + 1}));
  EXPECT_EQ(table.stats().pending_rejected, 1u);
  EXPECT_EQ(table.pending_counters(), 1u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_FALSE(table.observe_mismatch(9001, net::IPv4Address{newcomer + 2}));
  }
  EXPECT_TRUE(table.observe_mismatch(9001, net::IPv4Address{newcomer + 3}));
}

TEST(EiaTable, LegitimateSourceLearnsThroughAttackerFlood) {
  // The starvation regression: a spoofed flood of distinct /24s fills the
  // pending map to its cap, then a legitimate new source shows up. Before
  // the decay/eviction fix it could never learn.
  EiaTableConfig config;
  config.learn_threshold = 3;
  config.max_pending_counters = 2 * EiaTable::kPendingBanks;
  EiaTable table(config);
  util::SplitMix64 flood_rng{42};
  for (int i = 0; i < 10000; ++i) {
    table.observe_mismatch(
        9001, net::IPv4Address{static_cast<std::uint32_t>(flood_rng.next())});
  }
  // The bound holds throughout.
  EXPECT_LE(table.pending_counters(), config.max_pending_counters);
  EXPECT_GT(table.stats().pending_rejected, 0u);
  const auto legit = ip("77.200.1.1");
  EXPECT_FALSE(table.observe_mismatch(9001, legit));
  EXPECT_FALSE(table.observe_mismatch(9001, legit));
  EXPECT_TRUE(table.observe_mismatch(9001, legit));
  EXPECT_TRUE(table.is_expected(9001, ip("77.200.1.200")));
}

TEST(EiaTable, LearnedEntryFreesCounter) {
  EiaTableConfig config;
  config.learn_threshold = 2;
  EiaTable table(config);
  table.observe_mismatch(9001, ip("61.0.0.1"));
  EXPECT_EQ(table.pending_counters(), 1u);
  EXPECT_TRUE(table.observe_mismatch(9001, ip("61.0.0.2")));
  EXPECT_EQ(table.pending_counters(), 0u);
}

TEST(EiaTable, SetForReturnsNullForUnknownIngress) {
  EiaTable table;
  EXPECT_EQ(table.set_for(1234), nullptr);
  table.add_expected(1234, prefix("3.0.0.0/11"));
  ASSERT_NE(table.set_for(1234), nullptr);
  EXPECT_EQ(table.set_for(1234)->range_count(), 1u);
}

}  // namespace
}  // namespace infilter::core

// Tests for EIA sets and the per-ingress EIA table (core/eia.h).

#include "core/eia.h"

#include <gtest/gtest.h>

namespace infilter::core {
namespace {

net::IPv4Address ip(const char* text) { return *net::IPv4Address::parse(text); }
net::Prefix prefix(const char* text) { return *net::Prefix::parse(text); }

TEST(EiaSet, EmptyContainsNothing) {
  const EiaSet set;
  EXPECT_FALSE(set.contains(ip("1.2.3.4")));
  EXPECT_EQ(set.range_count(), 0u);
}

TEST(EiaSet, SinglePrefixMembership) {
  EiaSet set;
  set.add(prefix("10.0.0.0/8"));
  EXPECT_TRUE(set.contains(ip("10.0.0.0")));
  EXPECT_TRUE(set.contains(ip("10.255.255.255")));
  EXPECT_FALSE(set.contains(ip("9.255.255.255")));
  EXPECT_FALSE(set.contains(ip("11.0.0.0")));
  EXPECT_EQ(set.address_count(), std::uint64_t{1} << 24);
}

TEST(EiaSet, DisjointPrefixesKeepSeparateRanges) {
  EiaSet set;
  set.add(prefix("10.0.0.0/8"));
  set.add(prefix("20.0.0.0/8"));
  EXPECT_EQ(set.range_count(), 2u);
  EXPECT_TRUE(set.contains(ip("10.1.1.1")));
  EXPECT_TRUE(set.contains(ip("20.1.1.1")));
  EXPECT_FALSE(set.contains(ip("15.0.0.0")));
}

TEST(EiaSet, AdjacentPrefixesMerge) {
  EiaSet set;
  set.add(prefix("10.0.0.0/9"));
  set.add(prefix("10.128.0.0/9"));
  EXPECT_EQ(set.range_count(), 1u);
  EXPECT_EQ(set.address_count(), std::uint64_t{1} << 24);
}

TEST(EiaSet, OverlappingPrefixesMerge) {
  EiaSet set;
  set.add(prefix("10.0.0.0/8"));
  set.add(prefix("10.32.0.0/11"));  // contained
  EXPECT_EQ(set.range_count(), 1u);
  EXPECT_EQ(set.address_count(), std::uint64_t{1} << 24);
  set.add(prefix("8.0.0.0/7"));  // overlaps [8.0.0.0, 9.255.255.255]; adjacent to 10/8
  EXPECT_EQ(set.range_count(), 1u);
  EXPECT_TRUE(set.contains(ip("8.0.0.1")));
}

TEST(EiaSet, ManyInsertsOutOfOrder) {
  EiaSet set;
  // /24s inserted in shuffled order spanning 30.0.[0..63].0/24.
  for (int i = 63; i >= 0; i -= 2) {
    set.add(net::Prefix{net::IPv4Address{30, 0, static_cast<std::uint8_t>(i), 0}, 24});
  }
  for (int i = 0; i < 64; i += 2) {
    set.add(net::Prefix{net::IPv4Address{30, 0, static_cast<std::uint8_t>(i), 0}, 24});
  }
  EXPECT_EQ(set.range_count(), 1u);  // everything coalesces
  EXPECT_EQ(set.address_count(), 64u * 256u);
}

TEST(EiaSet, DuplicateAddIsIdempotent) {
  EiaSet set;
  set.add(prefix("10.0.0.0/8"));
  set.add(prefix("10.0.0.0/8"));
  EXPECT_EQ(set.range_count(), 1u);
  EXPECT_EQ(set.address_count(), std::uint64_t{1} << 24);
}

TEST(EiaSet, FullSpaceRange) {
  EiaSet set;
  set.add(prefix("0.0.0.0/0"));
  EXPECT_TRUE(set.contains(ip("0.0.0.0")));
  EXPECT_TRUE(set.contains(ip("255.255.255.255")));
  EXPECT_EQ(set.range_count(), 1u);
}

TEST(EiaTable, ExpectedLookupPerIngress) {
  EiaTable table;
  table.add_expected(9001, prefix("3.0.0.0/11"));
  table.add_expected(9002, prefix("3.32.0.0/11"));
  EXPECT_TRUE(table.is_expected(9001, ip("3.1.2.3")));
  EXPECT_FALSE(table.is_expected(9002, ip("3.1.2.3")));
  EXPECT_TRUE(table.is_expected(9002, ip("3.40.0.1")));
  EXPECT_FALSE(table.is_expected(9003, ip("3.1.2.3")));  // unknown ingress
}

TEST(EiaTable, ExpectedIngressFindsOwner) {
  EiaTable table;
  table.add_expected(9001, prefix("3.0.0.0/11"));
  table.add_expected(9002, prefix("3.32.0.0/11"));
  EXPECT_EQ(table.expected_ingress(ip("3.1.2.3")), std::optional<IngressId>{9001});
  EXPECT_EQ(table.expected_ingress(ip("3.40.0.1")), std::optional<IngressId>{9002});
  EXPECT_EQ(table.expected_ingress(ip("99.0.0.1")), std::nullopt);
}

TEST(EiaTable, ExpectedIngressPrefersLowestWhenShared) {
  EiaTable table;
  table.add_expected(9005, prefix("50.0.0.0/8"));
  table.add_expected(9001, prefix("50.0.0.0/8"));
  EXPECT_EQ(table.expected_ingress(ip("50.1.1.1")), std::optional<IngressId>{9001});
}

TEST(EiaTable, LearnsSlash24AfterThreshold) {
  EiaTableConfig config;
  config.learn_threshold = 5;
  EiaTable table(config);
  table.add_expected(9001, prefix("3.0.0.0/11"));

  const auto newcomer = ip("77.1.2.3");
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(table.observe_mismatch(9001, newcomer));
    EXPECT_FALSE(table.is_expected(9001, newcomer));
  }
  EXPECT_TRUE(table.observe_mismatch(9001, newcomer));  // 5th flow learns
  EXPECT_TRUE(table.is_expected(9001, newcomer));
  // The whole /24 was learned, but not the neighboring /24.
  EXPECT_TRUE(table.is_expected(9001, ip("77.1.2.250")));
  EXPECT_FALSE(table.is_expected(9001, ip("77.1.3.1")));
}

TEST(EiaTable, LearningIsPerIngress) {
  EiaTableConfig config;
  config.learn_threshold = 3;
  EiaTable table(config);
  const auto source = ip("88.5.5.5");
  table.observe_mismatch(9001, source);
  table.observe_mismatch(9001, source);
  table.observe_mismatch(9002, source);  // different ingress: separate counter
  EXPECT_FALSE(table.is_expected(9001, source));
  EXPECT_FALSE(table.is_expected(9002, source));
  EXPECT_TRUE(table.observe_mismatch(9001, source));
  EXPECT_TRUE(table.is_expected(9001, source));
  EXPECT_FALSE(table.is_expected(9002, source));
}

TEST(EiaTable, CounterKeyedBySlash24NotHost) {
  EiaTableConfig config;
  config.learn_threshold = 3;
  EiaTable table(config);
  // Three different hosts in one /24 accumulate on the same counter.
  table.observe_mismatch(9001, ip("66.1.1.1"));
  table.observe_mismatch(9001, ip("66.1.1.2"));
  EXPECT_TRUE(table.observe_mismatch(9001, ip("66.1.1.3")));
  EXPECT_TRUE(table.is_expected(9001, ip("66.1.1.200")));
}

TEST(EiaTable, PendingCounterCapStopsNewTracking) {
  EiaTableConfig config;
  config.learn_threshold = 2;
  config.max_pending_counters = 3;
  EiaTable table(config);
  // Fill the pending map with 3 distinct /24s.
  table.observe_mismatch(9001, ip("60.0.0.1"));
  table.observe_mismatch(9001, ip("60.0.1.1"));
  table.observe_mismatch(9001, ip("60.0.2.1"));
  EXPECT_EQ(table.pending_counters(), 3u);
  // A 4th /24 is not tracked...
  EXPECT_FALSE(table.observe_mismatch(9001, ip("60.0.3.1")));
  EXPECT_FALSE(table.observe_mismatch(9001, ip("60.0.3.1")));
  EXPECT_FALSE(table.is_expected(9001, ip("60.0.3.1")));
  // ...but existing counters still learn.
  EXPECT_TRUE(table.observe_mismatch(9001, ip("60.0.0.9")));
}

TEST(EiaTable, LearnedEntryFreesCounter) {
  EiaTableConfig config;
  config.learn_threshold = 2;
  EiaTable table(config);
  table.observe_mismatch(9001, ip("61.0.0.1"));
  EXPECT_EQ(table.pending_counters(), 1u);
  EXPECT_TRUE(table.observe_mismatch(9001, ip("61.0.0.2")));
  EXPECT_EQ(table.pending_counters(), 0u);
}

TEST(EiaTable, SetForReturnsNullForUnknownIngress) {
  EiaTable table;
  EXPECT_EQ(table.set_for(1234), nullptr);
  table.add_expected(1234, prefix("3.0.0.0/11"));
  ASSERT_NE(table.set_for(1234), nullptr);
  EXPECT_EQ(table.set_for(1234)->range_count(), 1u);
}

}  // namespace
}  // namespace infilter::core

// Tests for the Table 1 sub-block scheme (net/subblocks.h).

#include "net/subblocks.h"

#include <gtest/gtest.h>

#include <set>

namespace infilter::net {
namespace {

TEST(SubBlocks, TableOneHas143Blocks) {
  EXPECT_EQ(slash8_first_octets().size(), 143u);
  EXPECT_EQ(kTotalSubBlocks, 1144);
}

TEST(SubBlocks, FirstOctetsAscendAndMatchTableEndpoints) {
  const auto octets = slash8_first_octets();
  for (std::size_t i = 1; i < octets.size(); ++i) {
    EXPECT_LT(octets[i - 1], octets[i]);
  }
  EXPECT_EQ(octets.front(), 3);   // Table 1 starts at 003/8
  EXPECT_EQ(octets.back(), 222);  // and ends at 222/8
}

// The paper's worked examples: "3.0/11 would be represented by 1a,
// 3.32/11 by 1b, 4.64/11 by 2c, 9.0/11 by 5a, ... 204.224/11 by 125h".
struct NotationCase {
  const char* notation;
  const char* prefix;
};

class SubBlockNotation : public ::testing::TestWithParam<NotationCase> {};

TEST_P(SubBlockNotation, MatchesPaperExamples) {
  const auto& c = GetParam();
  const auto block = SubBlock::parse(c.notation);
  ASSERT_TRUE(block.has_value()) << c.notation;
  EXPECT_EQ(block->prefix(), *Prefix::parse(c.prefix)) << c.notation;
  EXPECT_EQ(block->notation(), c.notation);
}

INSTANTIATE_TEST_SUITE_P(PaperExamples, SubBlockNotation,
                         ::testing::Values(NotationCase{"1a", "3.0.0.0/11"},
                                           NotationCase{"1b", "3.32.0.0/11"},
                                           NotationCase{"2c", "4.64.0.0/11"},
                                           NotationCase{"5a", "9.0.0.0/11"},
                                           NotationCase{"125h", "204.224.0.0/11"},
                                           NotationCase{"13d", "18.96.0.0/11"},
                                           NotationCase{"143h", "222.224.0.0/11"}));

TEST(SubBlocks, PaperSubBlockBreakdownOf214) {
  // Section 6.2 example: 214/8 breaks into 214.0/11, 214.32/11, ...,
  // 214.224/11. 214 is in Table 1; find its block and verify all eight.
  const auto first = SubBlock::containing(IPv4Address{214, 0, 0, 0});
  ASSERT_TRUE(first.has_value());
  for (int letter = 0; letter < 8; ++letter) {
    const SubBlock block{(first->block_number() - 1) * 8 + letter};
    EXPECT_EQ(block.prefix().address(),
              (IPv4Address{214, static_cast<std::uint8_t>(letter << 5), 0, 0}));
    EXPECT_EQ(block.prefix().length(), 11);
  }
}

TEST(SubBlocks, RoundTripAllIndices) {
  for (int i = 0; i < kTotalSubBlocks; ++i) {
    const SubBlock block{i};
    const auto parsed = SubBlock::parse(block.notation());
    ASSERT_TRUE(parsed.has_value()) << block.notation();
    EXPECT_EQ(parsed->index(), i);
  }
}

TEST(SubBlocks, PrefixesAreDisjointAndCoverTableBlocks) {
  std::set<std::uint32_t> starts;
  for (int i = 0; i < kTotalSubBlocks; ++i) {
    const auto prefix = SubBlock{i}.prefix();
    EXPECT_TRUE(starts.insert(prefix.address().value()).second)
        << "duplicate prefix " << prefix.to_string();
    EXPECT_EQ(prefix.length(), 11);
  }
  EXPECT_EQ(starts.size(), static_cast<std::size_t>(kTotalSubBlocks));
}

TEST(SubBlocks, ContainingFindsOwnPrefix) {
  for (int i = 0; i < kTotalSubBlocks; i += 7) {
    const SubBlock block{i};
    // First, middle, and last address of the /11 all map back.
    const auto p = block.prefix();
    for (const auto address :
         {p.first(), IPv4Address{p.first().value() + p.size() / 2u}, p.last()}) {
      const auto found = SubBlock::containing(address);
      ASSERT_TRUE(found.has_value()) << p.to_string();
      EXPECT_EQ(found->index(), i);
    }
  }
}

TEST(SubBlocks, ContainingRejectsUnallocatedSpace) {
  // 0/8, 10/8 (private), 127/8 (loopback), 223/8+ are not in Table 1.
  EXPECT_FALSE(SubBlock::containing(IPv4Address{0, 1, 2, 3}).has_value());
  EXPECT_FALSE(SubBlock::containing(IPv4Address{10, 0, 0, 1}).has_value());
  EXPECT_FALSE(SubBlock::containing(IPv4Address{127, 0, 0, 1}).has_value());
  EXPECT_FALSE(SubBlock::containing(IPv4Address{223, 0, 0, 1}).has_value());
  EXPECT_FALSE(SubBlock::containing(IPv4Address{255, 255, 255, 255}).has_value());
}

TEST(SubBlocks, ParseRejectsGarbage) {
  EXPECT_FALSE(SubBlock::parse("").has_value());
  EXPECT_FALSE(SubBlock::parse("a").has_value());
  EXPECT_FALSE(SubBlock::parse("0a").has_value());
  EXPECT_FALSE(SubBlock::parse("144a").has_value());
  EXPECT_FALSE(SubBlock::parse("12i").has_value());
  EXPECT_FALSE(SubBlock::parse("12A").has_value());
  EXPECT_FALSE(SubBlock::parse("x2a").has_value());
}

TEST(SubBlockRange, ParseAndExpand) {
  const auto range = SubBlockRange::parse("1a-2h");
  ASSERT_TRUE(range.has_value());
  EXPECT_EQ(range->size(), 16);
  const auto blocks = range->expand();
  ASSERT_EQ(blocks.size(), 16u);
  EXPECT_EQ(blocks.front().notation(), "1a");
  EXPECT_EQ(blocks.back().notation(), "2h");
}

TEST(SubBlockRange, SingleBlockRange) {
  const auto range = SubBlockRange::parse("13c");
  ASSERT_TRUE(range.has_value());
  EXPECT_EQ(range->size(), 1);
  EXPECT_EQ(range->notation(), "13c");
}

TEST(SubBlockRange, RejectsReversedRange) {
  EXPECT_FALSE(SubBlockRange::parse("2a-1a").has_value());
}

TEST(SubBlockRange, ContainsIsInclusive) {
  const auto range = *SubBlockRange::parse("13e-25h");
  EXPECT_TRUE(range.contains(*SubBlock::parse("13e")));
  EXPECT_TRUE(range.contains(*SubBlock::parse("25h")));
  EXPECT_TRUE(range.contains(*SubBlock::parse("20a")));
  EXPECT_FALSE(range.contains(*SubBlock::parse("13d")));
  EXPECT_FALSE(range.contains(*SubBlock::parse("26a")));
}

TEST(SubBlocks, First1000CoverBlocks1Through125) {
  // "the 1000 address blocks used in our experiments are obtained by
  // breaking blocks 3/8 thru 204/8 ... and ignoring 205/8 onwards".
  const SubBlock last_used{kUsedSubBlocks - 1};
  EXPECT_EQ(last_used.notation(), "125h");
  EXPECT_EQ(last_used.prefix().address().octet(0), 204);
  const SubBlock first_unused{kUsedSubBlocks};
  EXPECT_EQ(first_unused.prefix().address().octet(0), 205);
}

}  // namespace
}  // namespace infilter::net

// util::Args: option parsing and numeric validation for the tools/ CLIs.

#include "util/args.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace infilter::util {
namespace {

Args parse(std::vector<const char*> argv,
           const std::vector<std::string>& flags = {}) {
  argv.insert(argv.begin(), "prog");
  const auto parsed = Args::parse(static_cast<int>(argv.size()), argv.data(), flags);
  EXPECT_TRUE(parsed.has_value()) << parsed.error().message;
  return *parsed;
}

TEST(Args, ParsesValuesFlagsAndPositionals) {
  const auto args = parse({"capture.bin", "--threads", "4", "--idmef"}, {"idmef"});
  EXPECT_EQ(args.positional(), std::vector<std::string>{"capture.bin"});
  EXPECT_EQ(args.value("threads"), "4");
  EXPECT_TRUE(args.has("idmef"));
  EXPECT_FALSE(args.has("queue-depth"));
}

TEST(Args, CheckedIntAcceptsInRangeValues) {
  const auto args = parse({"--threads", "8", "--offset", "-3"});
  const auto threads = args.checked_int("threads", 0, 0, 4096);
  ASSERT_TRUE(threads.has_value()) << threads.error().message;
  EXPECT_EQ(*threads, 8);
  const auto offset = args.checked_int("offset", 0, -10, 10);
  ASSERT_TRUE(offset.has_value()) << offset.error().message;
  EXPECT_EQ(*offset, -3);
  // Boundary values are in range.
  const auto zero = parse({"--threads", "0"}).checked_int("threads", 1, 0, 4096);
  ASSERT_TRUE(zero.has_value());
  EXPECT_EQ(*zero, 0);
}

TEST(Args, CheckedIntAbsentOptionYieldsFallbackUnvalidated) {
  const auto args = parse({});
  // The fallback is the caller's default and is not range-checked.
  const auto depth = args.checked_int("queue-depth", 4096, 1, 1 << 24);
  ASSERT_TRUE(depth.has_value());
  EXPECT_EQ(*depth, 4096);
}

TEST(Args, CheckedIntRejectsNonNumericValue) {
  const auto args = parse({"--threads", "four"});
  const auto threads = args.checked_int("threads", 0, 0, 4096);
  ASSERT_FALSE(threads.has_value());
  EXPECT_NE(threads.error().message.find("--threads"), std::string::npos);
  EXPECT_NE(threads.error().message.find("four"), std::string::npos);
  // int_or, by contrast, silently yields 0 -- the hazard checked_int closes.
  EXPECT_EQ(args.int_or("threads", 7), 0);
}

TEST(Args, CheckedIntRejectsTrailingJunk) {
  const auto args = parse({"--queue-depth", "512k"});
  const auto depth = args.checked_int("queue-depth", 4096, 1, 1 << 24);
  ASSERT_FALSE(depth.has_value());
  EXPECT_NE(depth.error().message.find("512k"), std::string::npos);
}

TEST(Args, CheckedIntRejectsEmptyValue) {
  const auto args = parse({"--threads", ""});
  EXPECT_FALSE(args.checked_int("threads", 0, 0, 4096).has_value());
}

TEST(Args, CheckedIntRejectsOutOfRangeNamingTheRange) {
  const auto args = parse({"--threads", "5000", "--queue-depth", "0"});
  const auto threads = args.checked_int("threads", 0, 0, 4096);
  ASSERT_FALSE(threads.has_value());
  EXPECT_NE(threads.error().message.find("[0, 4096]"), std::string::npos);
  const auto depth = args.checked_int("queue-depth", 4096, 1, 1 << 24);
  ASSERT_FALSE(depth.has_value());
  EXPECT_NE(depth.error().message.find("out of range"), std::string::npos);
}

TEST(Args, CheckedIntRejectsOverflow) {
  const auto args = parse({"--seed", "99999999999999999999999999"});
  EXPECT_FALSE(args.checked_int("seed", 1).has_value());
}

}  // namespace
}  // namespace infilter::util

// Tests for EIA persistence and CIDR decomposition (core/eia_io.h).

#include "core/eia_io.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace infilter::core {
namespace {

net::Prefix prefix(const char* text) { return *net::Prefix::parse(text); }

TEST(EiaCidrs, SinglePrefixRoundTrips) {
  EiaSet set;
  set.add(prefix("3.32.0.0/11"));
  const auto cidrs = set.to_cidrs();
  ASSERT_EQ(cidrs.size(), 1u);
  EXPECT_EQ(cidrs.front(), prefix("3.32.0.0/11"));
}

TEST(EiaCidrs, MergedAdjacentPrefixesCollapse) {
  EiaSet set;
  set.add(prefix("10.0.0.0/9"));
  set.add(prefix("10.128.0.0/9"));
  const auto cidrs = set.to_cidrs();
  ASSERT_EQ(cidrs.size(), 1u);
  EXPECT_EQ(cidrs.front(), prefix("10.0.0.0/8"));
}

TEST(EiaCidrs, UnalignedRangeDecomposesMinimally) {
  // [10.0.1.0, 10.0.3.255]: cannot be one CIDR (not aligned);
  // minimal cover is 10.0.1.0/24 + 10.0.2.0/23.
  EiaSet set;
  set.add(prefix("10.0.1.0/24"));
  set.add(prefix("10.0.2.0/23"));
  const auto cidrs = set.to_cidrs();
  ASSERT_EQ(cidrs.size(), 2u);
  EXPECT_EQ(cidrs[0], prefix("10.0.1.0/24"));
  EXPECT_EQ(cidrs[1], prefix("10.0.2.0/23"));
}

TEST(EiaCidrs, DecompositionCoversExactly) {
  // Randomized: decomposition covers the same membership as the set.
  util::Rng rng{5};
  EiaSet set;
  for (int i = 0; i < 30; ++i) {
    const auto base = static_cast<std::uint32_t>(rng.below(1 << 14));
    set.add(net::Prefix{net::IPv4Address{0x0A000000u + (base << 2)},
                        static_cast<int>(rng.range(24, 30))});
  }
  const auto cidrs = set.to_cidrs();
  // No overlaps, ascending order, and membership equivalence on probes.
  for (std::size_t i = 1; i < cidrs.size(); ++i) {
    EXPECT_GT(cidrs[i].first().value(), cidrs[i - 1].last().value());
  }
  std::uint64_t covered = 0;
  for (const auto& cidr : cidrs) covered += cidr.size();
  EXPECT_EQ(covered, set.address_count());
  for (int probe = 0; probe < 2000; ++probe) {
    const net::IPv4Address address{0x0A000000u +
                                   static_cast<std::uint32_t>(rng.below(1 << 16))};
    bool in_cidrs = false;
    for (const auto& cidr : cidrs) in_cidrs |= cidr.contains(address);
    EXPECT_EQ(in_cidrs, set.contains(address));
  }
}

TEST(EiaCidrs, FullSpace) {
  EiaSet set;
  set.add(prefix("0.0.0.0/0"));
  const auto cidrs = set.to_cidrs();
  ASSERT_EQ(cidrs.size(), 1u);
  EXPECT_EQ(cidrs.front().length(), 0);
}

TEST(EiaIo, ExportImportRoundTrip) {
  EiaTable table;
  table.add_expected(9001, prefix("3.0.0.0/11"));
  table.add_expected(9001, prefix("4.64.0.0/11"));
  table.add_expected(9002, prefix("3.32.0.0/11"));
  const auto text = export_eia(table);
  const auto imported = import_eia(text);
  ASSERT_TRUE(imported.has_value()) << imported.error().message;
  EXPECT_EQ(imported->ingresses(), table.ingresses());
  for (const char* probe : {"3.1.2.3", "4.70.0.1", "3.40.0.1", "9.9.9.9"}) {
    const auto address = *net::IPv4Address::parse(probe);
    EXPECT_EQ(imported->is_expected(9001, address), table.is_expected(9001, address))
        << probe;
    EXPECT_EQ(imported->is_expected(9002, address), table.is_expected(9002, address))
        << probe;
  }
}

TEST(EiaIo, LearnedEntriesSurviveRoundTrip) {
  EiaTableConfig config;
  config.learn_threshold = 2;
  EiaTable table(config);
  table.add_expected(9001, prefix("3.0.0.0/11"));
  table.observe_mismatch(9001, *net::IPv4Address::parse("77.1.2.3"));
  table.observe_mismatch(9001, *net::IPv4Address::parse("77.1.2.4"));  // learns /24
  ASSERT_TRUE(table.is_expected(9001, *net::IPv4Address::parse("77.1.2.200")));

  const auto imported = import_eia(export_eia(table));
  ASSERT_TRUE(imported.has_value());
  EXPECT_TRUE(imported->is_expected(9001, *net::IPv4Address::parse("77.1.2.200")));
  EXPECT_FALSE(imported->is_expected(9001, *net::IPv4Address::parse("77.1.3.1")));
}

TEST(EiaIo, ImportHandlesCommentsAndEmptyStanzas) {
  const auto imported = import_eia(
      "# top comment\n"
      "ingress 9001\n"
      "  # indented comment\n"
      "  3.0.0.0/11\n"
      "ingress 9002\n"  // empty stanza
      "ingress 9003\n"
      "  18.96.0.0/11\n");
  ASSERT_TRUE(imported.has_value()) << imported.error().message;
  EXPECT_EQ(imported->ingress_count(), 3u);
  EXPECT_TRUE(imported->is_expected(9001, *net::IPv4Address::parse("3.1.1.1")));
  ASSERT_NE(imported->set_for(9002), nullptr);
  EXPECT_EQ(imported->set_for(9002)->range_count(), 0u);
}

TEST(EiaIo, ImportRejectsPrefixBeforeStanza) {
  const auto imported = import_eia("3.0.0.0/11\n");
  ASSERT_FALSE(imported.has_value());
  EXPECT_NE(imported.error().message.find("line 1"), std::string::npos);
}

TEST(EiaIo, ImportRejectsBadIngressId) {
  EXPECT_FALSE(import_eia("ingress banana\n").has_value());
  EXPECT_FALSE(import_eia("ingress 99999\n").has_value());
}

TEST(EiaIo, ImportRejectsBadPrefix) {
  const auto imported = import_eia("ingress 9001\n  3.0.0.0/40\n");
  ASSERT_FALSE(imported.has_value());
  EXPECT_NE(imported.error().message.find("line 2"), std::string::npos);
}

}  // namespace
}  // namespace infilter::core

// Tests for EIA persistence and CIDR decomposition (core/eia_io.h).

#include "core/eia_io.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace infilter::core {
namespace {

net::Prefix prefix(const char* text) { return *net::Prefix::parse(text); }

TEST(EiaCidrs, SinglePrefixRoundTrips) {
  EiaSet set;
  set.add(prefix("3.32.0.0/11"));
  const auto cidrs = set.to_cidrs();
  ASSERT_EQ(cidrs.size(), 1u);
  EXPECT_EQ(cidrs.front(), prefix("3.32.0.0/11"));
}

TEST(EiaCidrs, MergedAdjacentPrefixesCollapse) {
  EiaSet set;
  set.add(prefix("10.0.0.0/9"));
  set.add(prefix("10.128.0.0/9"));
  const auto cidrs = set.to_cidrs();
  ASSERT_EQ(cidrs.size(), 1u);
  EXPECT_EQ(cidrs.front(), prefix("10.0.0.0/8"));
}

TEST(EiaCidrs, UnalignedRangeDecomposesMinimally) {
  // [10.0.1.0, 10.0.3.255]: cannot be one CIDR (not aligned);
  // minimal cover is 10.0.1.0/24 + 10.0.2.0/23.
  EiaSet set;
  set.add(prefix("10.0.1.0/24"));
  set.add(prefix("10.0.2.0/23"));
  const auto cidrs = set.to_cidrs();
  ASSERT_EQ(cidrs.size(), 2u);
  EXPECT_EQ(cidrs[0], prefix("10.0.1.0/24"));
  EXPECT_EQ(cidrs[1], prefix("10.0.2.0/23"));
}

TEST(EiaCidrs, DecompositionCoversExactly) {
  // Randomized: decomposition covers the same membership as the set.
  util::Rng rng{5};
  EiaSet set;
  for (int i = 0; i < 30; ++i) {
    const auto base = static_cast<std::uint32_t>(rng.below(1 << 14));
    set.add(net::Prefix{net::IPv4Address{0x0A000000u + (base << 2)},
                        static_cast<int>(rng.range(24, 30))});
  }
  const auto cidrs = set.to_cidrs();
  // No overlaps, ascending order, and membership equivalence on probes.
  for (std::size_t i = 1; i < cidrs.size(); ++i) {
    EXPECT_GT(cidrs[i].first().value(), cidrs[i - 1].last().value());
  }
  std::uint64_t covered = 0;
  for (const auto& cidr : cidrs) covered += cidr.size();
  EXPECT_EQ(covered, set.address_count());
  for (int probe = 0; probe < 2000; ++probe) {
    const net::IPv4Address address{0x0A000000u +
                                   static_cast<std::uint32_t>(rng.below(1 << 16))};
    bool in_cidrs = false;
    for (const auto& cidr : cidrs) in_cidrs |= cidr.contains(address);
    EXPECT_EQ(in_cidrs, set.contains(address));
  }
}

TEST(EiaCidrs, FullSpace) {
  EiaSet set;
  set.add(prefix("0.0.0.0/0"));
  const auto cidrs = set.to_cidrs();
  ASSERT_EQ(cidrs.size(), 1u);
  EXPECT_EQ(cidrs.front().length(), 0);
}

TEST(EiaIo, ExportImportRoundTrip) {
  EiaTable table;
  table.add_expected(9001, prefix("3.0.0.0/11"));
  table.add_expected(9001, prefix("4.64.0.0/11"));
  table.add_expected(9002, prefix("3.32.0.0/11"));
  const auto text = export_eia(table);
  const auto imported = import_eia(text);
  ASSERT_TRUE(imported.has_value()) << imported.error().message;
  EXPECT_EQ(imported->ingresses(), table.ingresses());
  for (const char* probe : {"3.1.2.3", "4.70.0.1", "3.40.0.1", "9.9.9.9"}) {
    const auto address = *net::IPv4Address::parse(probe);
    EXPECT_EQ(imported->is_expected(9001, address), table.is_expected(9001, address))
        << probe;
    EXPECT_EQ(imported->is_expected(9002, address), table.is_expected(9002, address))
        << probe;
  }
}

TEST(EiaIo, LearnedEntriesSurviveRoundTrip) {
  EiaTableConfig config;
  config.learn_threshold = 2;
  EiaTable table(config);
  table.add_expected(9001, prefix("3.0.0.0/11"));
  table.observe_mismatch(9001, *net::IPv4Address::parse("77.1.2.3"));
  table.observe_mismatch(9001, *net::IPv4Address::parse("77.1.2.4"));  // learns /24
  ASSERT_TRUE(table.is_expected(9001, *net::IPv4Address::parse("77.1.2.200")));

  const auto imported = import_eia(export_eia(table));
  ASSERT_TRUE(imported.has_value());
  EXPECT_TRUE(imported->is_expected(9001, *net::IPv4Address::parse("77.1.2.200")));
  EXPECT_FALSE(imported->is_expected(9001, *net::IPv4Address::parse("77.1.3.1")));
}

TEST(EiaIo, ImportHandlesCommentsAndEmptyStanzas) {
  const auto imported = import_eia(
      "# top comment\n"
      "ingress 9001\n"
      "  # indented comment\n"
      "  3.0.0.0/11\n"
      "ingress 9002\n"  // empty stanza
      "ingress 9003\n"
      "  18.96.0.0/11\n");
  ASSERT_TRUE(imported.has_value()) << imported.error().message;
  EXPECT_EQ(imported->ingress_count(), 3u);
  EXPECT_TRUE(imported->is_expected(9001, *net::IPv4Address::parse("3.1.1.1")));
  ASSERT_NE(imported->set_for(9002), nullptr);
  EXPECT_EQ(imported->set_for(9002)->range_count(), 0u);
}

TEST(EiaIo, ImportRejectsPrefixBeforeStanza) {
  const auto imported = import_eia("3.0.0.0/11\n");
  ASSERT_FALSE(imported.has_value());
  EXPECT_NE(imported.error().message.find("line 1"), std::string::npos);
}

TEST(EiaIo, ImportRejectsBadIngressId) {
  EXPECT_FALSE(import_eia("ingress banana\n").has_value());
  EXPECT_FALSE(import_eia("ingress 99999\n").has_value());
}

TEST(EiaIo, ImportRejectsBadPrefix) {
  const auto imported = import_eia("ingress 9001\n  3.0.0.0/40\n");
  ASSERT_FALSE(imported.has_value());
  EXPECT_NE(imported.error().message.find("line 2"), std::string::npos);
}

TEST(EiaIo, ExactExportIsByteIdenticalAcrossRoundTrip) {
  EiaTable table;
  table.add_expected(9001, prefix("3.0.0.0/11"));
  table.add_expected(9002, prefix("18.96.0.0/11"));
  const auto text = export_eia(table);
  const auto imported = import_eia(text);
  ASSERT_TRUE(imported.has_value());
  EXPECT_EQ(export_eia(*imported), text);
}

TEST(EiaIo, BloomRoundTripAnswersIdentically) {
  EiaTableConfig config;
  config.backend.type = EiaBackendType::kBloom;
  config.backend.bits = 1 << 16;
  config.backend.hashes = 3;
  EiaTable table(config);
  table.declare_ingress(9002);  // empty stanza must survive
  util::SplitMix64 rng{3};
  for (int i = 0; i < 500; ++i) {
    table.add_expected(
        9001, net::Prefix{
                  net::IPv4Address{static_cast<std::uint32_t>(rng.next()) &
                                   0xFFFFFF00u},
                  24});
  }
  const auto text = export_eia(table);
  EXPECT_NE(text.find("backend bloom"), std::string::npos);
  // Import with a DIFFERENT caller config: the directive must win.
  const auto imported = import_eia(text);
  ASSERT_TRUE(imported.has_value()) << imported.error().message;
  EXPECT_EQ(imported->backend().type(), EiaBackendType::kBloom);
  EXPECT_EQ(imported->ingresses(), table.ingresses());
  // Identical answers, false positives included, on a wide probe sweep.
  util::SplitMix64 probe_rng{55};
  for (int i = 0; i < 20000; ++i) {
    const net::IPv4Address address{static_cast<std::uint32_t>(probe_rng.next())};
    ASSERT_EQ(imported->is_expected(9001, address),
              table.is_expected(9001, address))
        << address.to_string();
    ASSERT_EQ(imported->expected_ingress(address), table.expected_ingress(address))
        << address.to_string();
  }
  // And the re-export reproduces the file byte for byte.
  EXPECT_EQ(export_eia(*imported), text);
}

TEST(EiaIo, BloomAgingStateSurvivesRoundTrip) {
  EiaTableConfig config;
  config.backend.type = EiaBackendType::kBloom;
  config.backend.bits = 1 << 16;
  config.backend.subfilters = 3;
  config.backend.rotate_every = 2;
  EiaTable table(config);
  util::SplitMix64 rng{9};
  for (int i = 0; i < 4000; ++i) {
    table.add_expected(
        9001, net::Prefix{
                  net::IPv4Address{static_cast<std::uint32_t>(rng.next()) &
                                   0xFFFFFF00u},
                  24});
  }
  const auto& before = static_cast<const BankedBloomBase&>(table.backend());
  ASSERT_GT(before.rotations(), 0u);
  const auto text = export_eia(table);
  auto imported = import_eia(text);
  ASSERT_TRUE(imported.has_value()) << imported.error().message;
  const auto& after = static_cast<const BankedBloomBase&>(imported->backend());
  EXPECT_EQ(after.rotations(), before.rotations());
  EXPECT_EQ(after.insert_count(), before.insert_count());
  EXPECT_EQ(after.bank_current(), before.bank_current());
  EXPECT_EQ(after.bank_inserts(), before.bank_inserts());
  // The aging schedule continues identically: one more insert stream into
  // both tables keeps them in lockstep.
  util::SplitMix64 more{13};
  for (int i = 0; i < 200; ++i) {
    const net::Prefix p{
        net::IPv4Address{static_cast<std::uint32_t>(more.next()) & 0xFFFFFF00u},
        24};
    table.add_expected(9001, p);
    imported->add_expected(9001, p);
  }
  EXPECT_EQ(export_eia(*imported), export_eia(table));
}

TEST(EiaIo, CountingBloomRoundTripPreservesCounters) {
  EiaTableConfig config;
  config.backend.type = EiaBackendType::kCountingBloom;
  config.backend.bits = 1 << 16;
  EiaTable table(config);
  table.add_expected(9001, prefix("10.0.0.0/24"));
  table.add_expected(9001, prefix("10.0.0.0/24"));  // counter = 2
  table.add_expected(9001, prefix("10.0.1.0/24"));
  const auto text = export_eia(table);
  EXPECT_NE(text.find("backend cbloom"), std::string::npos);
  auto imported = import_eia(text);
  ASSERT_TRUE(imported.has_value()) << imported.error().message;
  // Counter values (not just membership) round-trip: one unlearn leaves
  // the double-added key present, a second removes it.
  auto& backend = imported->backend_mut();
  ASSERT_TRUE(backend.supports_unlearn());
  backend.unlearn(9001, prefix("10.0.0.0/24"));
  EXPECT_TRUE(imported->is_expected(9001, *net::IPv4Address::parse("10.0.0.1")));
  backend.unlearn(9001, prefix("10.0.0.0/24"));
  EXPECT_FALSE(imported->is_expected(9001, *net::IPv4Address::parse("10.0.0.1")));
  EXPECT_TRUE(imported->is_expected(9001, *net::IPv4Address::parse("10.0.1.1")));
}

TEST(EiaIo, PerIngressBloomRoundTrips) {
  EiaTableConfig config;
  config.backend.type = EiaBackendType::kBloom;
  config.backend.bits = 1 << 16;
  config.backend.per_ingress = true;
  EiaTable table(config);
  table.add_expected(9001, prefix("10.1.0.0/24"));
  table.add_expected(9003, prefix("10.3.0.0/24"));
  table.add_expected(9002, prefix("10.2.0.0/24"));
  const auto text = export_eia(table);
  const auto imported = import_eia(text);
  ASSERT_TRUE(imported.has_value()) << imported.error().message;
  EXPECT_TRUE(imported->is_expected(9001, *net::IPv4Address::parse("10.1.0.9")));
  EXPECT_TRUE(imported->is_expected(9002, *net::IPv4Address::parse("10.2.0.9")));
  EXPECT_TRUE(imported->is_expected(9003, *net::IPv4Address::parse("10.3.0.9")));
  EXPECT_FALSE(imported->is_expected(9002, *net::IPv4Address::parse("10.1.0.9")));
  EXPECT_EQ(export_eia(*imported), text);
}

TEST(EiaIo, BackendDirectiveOverridesCallerConfig) {
  // A caller configured for exact still gets a Bloom table back when the
  // file says so -- the file is the authority on its own representation.
  const auto imported = import_eia(
      "backend bloom bits=65536 k=2 subfilters=1 rotate=0 per_ingress=0 "
      "seed=1 inserts=0 rotations=0\n"
      "ingress 9001\n"
      "filter 0\n");
  ASSERT_TRUE(imported.has_value()) << imported.error().message;
  EXPECT_EQ(imported->backend().type(), EiaBackendType::kBloom);
  EXPECT_EQ(imported->ingress_count(), 1u);
}

TEST(EiaIo, RejectsMalformedBackendState) {
  // Directive after state lines.
  EXPECT_FALSE(import_eia("ingress 9001\nbackend bloom\n").has_value());
  // State lines without a probabilistic backend.
  EXPECT_FALSE(import_eia("ingress 9001\nwords 0 0000000000000001\n").has_value());
  // Word index out of range.
  EXPECT_FALSE(
      import_eia("backend bloom bits=65536\nfilter 0\nwords 999999999 "
                 "0000000000000001\n")
          .has_value());
  // Bad hex width.
  EXPECT_FALSE(
      import_eia("backend bloom bits=65536\nfilter 0\nwords 0 1\n").has_value());
  // Unknown parameter.
  EXPECT_FALSE(import_eia("backend bloom frobs=1\n").has_value());
  // 'bytes' under a bloom backend.
  EXPECT_FALSE(
      import_eia("backend bloom bits=65536\nfilter 0\nbytes 0 01\n").has_value());
}

}  // namespace
}  // namespace infilter::core

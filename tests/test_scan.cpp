// Tests for Scan Analysis (core/scan.h).

#include "core/scan.h"

#include <gtest/gtest.h>

namespace infilter::core {
namespace {

netflow::V5Record flow_to(net::IPv4Address dst, std::uint16_t dst_port) {
  netflow::V5Record r;
  r.src_ip = net::IPv4Address{9, 9, 9, 9};
  r.dst_ip = dst;
  r.proto = 6;
  r.src_port = 40000;
  r.dst_port = dst_port;
  r.packets = 1;
  r.bytes = 40;
  return r;
}

net::IPv4Address host(std::uint32_t i) {
  return net::IPv4Address{(100u << 24) | (64u << 16) | i};
}

ScanConfig small_config() {
  ScanConfig c;
  c.buffer_size = 50;
  c.network_scan_threshold = 10;
  c.host_scan_threshold = 8;
  return c;
}

TEST(ScanAnalysis, DegenerateConfigIsClampedNotAsserted) {
  // A hostile or typo'd config must not reach observe() as-is: in a
  // release build (no asserts) buffer_size == 0 would evict from an empty
  // deque and a threshold of 1 would flag the very first suspect flow.
  ScanConfig degenerate;
  degenerate.buffer_size = 0;
  degenerate.network_scan_threshold = 0;
  degenerate.host_scan_threshold = 1;
  ScanAnalysis scan(degenerate);
  EXPECT_EQ(scan.config().buffer_size, 1u);
  EXPECT_EQ(scan.config().network_scan_threshold, 2);
  EXPECT_EQ(scan.config().host_scan_threshold, 2);

  // observe() works on the clamped one-flow buffer: each flow evicts the
  // previous one, so no counter ever reaches 2 and every verdict is clean.
  for (std::uint32_t i = 0; i < 10; ++i) {
    EXPECT_EQ(scan.observe(flow_to(host(i), 80)), ScanVerdict::kClean) << i;
    EXPECT_EQ(scan.buffered_flows(), 1u);
  }
  EXPECT_EQ(scan.stats().observed, 10u);
  EXPECT_EQ(scan.stats().evictions, 9u);

  // The clamped threshold of 2 behaves like an explicit 2: the second
  // distinct host on a port trips the network-scan counter.
  ScanConfig roomy = degenerate;
  roomy.buffer_size = 50;
  ScanAnalysis pair(roomy);
  EXPECT_EQ(pair.observe(flow_to(host(1), 443)), ScanVerdict::kClean);
  EXPECT_EQ(pair.observe(flow_to(host(2), 443)), ScanVerdict::kNetworkScan);
}

TEST(ScanAnalysis, CleanUntilNetworkThreshold) {
  ScanAnalysis scan(small_config());
  // 9 distinct hosts on port 1434: still clean; the 10th trips.
  for (std::uint32_t i = 0; i < 9; ++i) {
    EXPECT_EQ(scan.observe(flow_to(host(i), 1434)), ScanVerdict::kClean) << i;
  }
  EXPECT_EQ(scan.observe(flow_to(host(9), 1434)), ScanVerdict::kNetworkScan);
}

TEST(ScanAnalysis, RepeatHostsDoNotInflateNetworkCount) {
  ScanAnalysis scan(small_config());
  // 30 flows but only 3 distinct hosts: never a network scan.
  for (int i = 0; i < 30; ++i) {
    EXPECT_EQ(scan.observe(flow_to(host(static_cast<std::uint32_t>(i % 3)), 80)),
              ScanVerdict::kClean);
  }
  EXPECT_EQ(scan.hosts_on_port(80), 3);
}

TEST(ScanAnalysis, DistinctPortsSeparateNetworkCounters) {
  ScanAnalysis scan(small_config());
  for (std::uint32_t i = 0; i < 9; ++i) {
    scan.observe(flow_to(host(i), 80));
  }
  // Different port: its own counter starts fresh.
  EXPECT_EQ(scan.observe(flow_to(host(100), 443)), ScanVerdict::kClean);
  EXPECT_EQ(scan.hosts_on_port(443), 1);
}

TEST(ScanAnalysis, HostScanDetection) {
  ScanAnalysis scan(small_config());
  const auto victim = host(1);
  for (std::uint16_t port = 1; port < 8; ++port) {
    EXPECT_EQ(scan.observe(flow_to(victim, port)), ScanVerdict::kClean) << port;
  }
  EXPECT_EQ(scan.observe(flow_to(victim, 8)), ScanVerdict::kHostScan);
}

TEST(ScanAnalysis, RepeatPortsDoNotInflateHostCount) {
  ScanAnalysis scan(small_config());
  const auto victim = host(2);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(scan.observe(flow_to(victim, static_cast<std::uint16_t>(80 + i % 2))),
              ScanVerdict::kClean);
  }
  EXPECT_EQ(scan.ports_on_host(victim), 2);
}

TEST(ScanAnalysis, NetworkScanTakesPriorityWhenBothTrip) {
  ScanConfig config = small_config();
  config.network_scan_threshold = 2;
  config.host_scan_threshold = 2;
  ScanAnalysis scan(config);
  scan.observe(flow_to(host(1), 80));
  scan.observe(flow_to(host(1), 81));  // would be host scan
  // This flow makes port 80 span two hosts AND host(2) has 1 port; network
  // scan is checked first.
  EXPECT_EQ(scan.observe(flow_to(host(2), 80)), ScanVerdict::kNetworkScan);
}

TEST(ScanAnalysis, BufferEvictionForgetsOldFlows) {
  ScanConfig config = small_config();  // buffer 50
  ScanAnalysis scan(config);
  // 9 hosts on port 1434, then 50 unrelated flows to flush them out.
  for (std::uint32_t i = 0; i < 9; ++i) scan.observe(flow_to(host(i), 1434));
  for (std::uint32_t i = 0; i < 50; ++i) {
    scan.observe(flow_to(host(1000 + i), static_cast<std::uint16_t>(2000 + i)));
  }
  EXPECT_EQ(scan.hosts_on_port(1434), 0);
  // A slow scan that lost its buffered history must re-accumulate.
  EXPECT_EQ(scan.observe(flow_to(host(9), 1434)), ScanVerdict::kClean);
}

TEST(ScanAnalysis, BufferNeverExceedsConfiguredSize) {
  ScanAnalysis scan(small_config());
  for (std::uint32_t i = 0; i < 500; ++i) {
    scan.observe(flow_to(host(i), static_cast<std::uint16_t>(i % 7 + 1)));
    EXPECT_LE(scan.buffered_flows(), 50u);
  }
}

TEST(ScanAnalysis, SlammerPatternTripsNetworkScan) {
  // The paper's motivating case: one UDP packet to port 1434 per random
  // host. With the default 200-flow buffer, a burst of distinct victims
  // trips the counter quickly.
  ScanAnalysis scan;  // defaults: buffer 200, network threshold 15
  ScanVerdict verdict = ScanVerdict::kClean;
  int flows_needed = 0;
  for (std::uint32_t i = 0; i < 100 && verdict == ScanVerdict::kClean; ++i) {
    netflow::V5Record r = flow_to(host(i), 1434);
    r.proto = 17;
    r.bytes = 404;
    verdict = scan.observe(r);
    ++flows_needed;
  }
  EXPECT_EQ(verdict, ScanVerdict::kNetworkScan);
  EXPECT_EQ(flows_needed, 15);
}

TEST(ScanAnalysis, IdlescanPatternTripsHostScan) {
  ScanAnalysis scan;  // defaults: host threshold 15
  const auto victim = host(1);
  ScanVerdict verdict = ScanVerdict::kClean;
  int flows_needed = 0;
  for (std::uint16_t port = 1; port < 100 && verdict == ScanVerdict::kClean; ++port) {
    verdict = scan.observe(flow_to(victim, port));
    ++flows_needed;
  }
  EXPECT_EQ(verdict, ScanVerdict::kHostScan);
  EXPECT_EQ(flows_needed, 15);
}

}  // namespace
}  // namespace infilter::core

// Tests for cluster partitioning and NNS training (core/cluster.h).

#include "core/cluster.h"

#include <gtest/gtest.h>

#include <set>
#include <string_view>

#include "dagflow/dagflow.h"
#include "traffic/normal.h"

namespace infilter::core {
namespace {

netflow::V5Record make_record(std::uint8_t proto, std::uint16_t dst_port,
                              std::uint32_t packets = 10, std::uint32_t bytes = 5000,
                              std::uint32_t duration = 1000) {
  netflow::V5Record r;
  r.proto = proto;
  r.dst_port = dst_port;
  r.packets = packets;
  r.bytes = bytes;
  r.first = 0;
  r.last = duration;
  return r;
}

struct ClassifyCase {
  std::uint8_t proto;
  std::uint16_t dst_port;
  Subcluster expected;
};

class ClassifyTest : public ::testing::TestWithParam<ClassifyCase> {};

TEST_P(ClassifyTest, MapsToPaperSubcluster) {
  const auto& c = GetParam();
  EXPECT_EQ(classify(make_record(c.proto, c.dst_port)), c.expected);
}

INSTANTIATE_TEST_SUITE_P(
    PaperPartition, ClassifyTest,
    ::testing::Values(ClassifyCase{6, 80, Subcluster::kHttp},
                      ClassifyCase{6, 25, Subcluster::kSmtp},
                      ClassifyCase{6, 21, Subcluster::kFtp},
                      ClassifyCase{17, 53, Subcluster::kDns},
                      ClassifyCase{17, 5353, Subcluster::kUdp},
                      ClassifyCase{17, 80, Subcluster::kUdp},  // udp/80 is not http
                      ClassifyCase{6, 443, Subcluster::kTcp},
                      ClassifyCase{6, 53, Subcluster::kTcp},  // tcp/53 is not dns
                      ClassifyCase{1, 0, Subcluster::kIcmp},
                      ClassifyCase{47, 0, Subcluster::kTcp}));  // GRE -> generic

TEST(SubclusterNames, AllDistinct) {
  std::set<std::string_view> names;
  for (int c = 0; c < kSubclusterCount; ++c) {
    EXPECT_TRUE(names.insert(subcluster_name(static_cast<Subcluster>(c))).second);
  }
}

TEST(FlowEncoder, PaperDimensionIs720) {
  const auto encoder = make_flow_encoder(144);
  EXPECT_EQ(encoder.dimension(), 720);
  EXPECT_EQ(encoder.feature_count(), 5u);
}

ClusterConfig fast_config() {
  ClusterConfig c;
  c.bits_per_feature = 48;  // d = 240: faster tests, same structure
  return c;
}

std::vector<netflow::V5Record> training_records(std::size_t count,
                                                std::uint64_t seed = 1) {
  traffic::NormalTrafficModel model;
  util::Rng rng{seed};
  const auto trace = model.generate(count, 0, rng);
  dagflow::Dagflow replayer(dagflow::DagflowConfig{},
                            dagflow::AddressPool::from_subblocks(
                                {*net::SubBlock::parse("1a")}),
                            seed);
  std::vector<netflow::V5Record> records;
  for (const auto& labeled : replayer.replay(trace)) records.push_back(labeled.record);
  return records;
}

TEST(TrainedClusters, PartitionsTrainingFlows) {
  const auto records = training_records(800);
  const TrainedClusters clusters(records, fast_config(), 7);
  std::size_t total = 0;
  for (int c = 0; c < kSubclusterCount; ++c) {
    total += clusters.training_size(static_cast<Subcluster>(c));
  }
  EXPECT_EQ(total, records.size());
  EXPECT_GT(clusters.training_size(Subcluster::kHttp), 100u);
  EXPECT_GT(clusters.training_size(Subcluster::kDns), 50u);
}

TEST(TrainedClusters, ThresholdsArePositiveAndBounded) {
  const auto records = training_records(600);
  const TrainedClusters clusters(records, fast_config(), 8);
  for (int c = 0; c < kSubclusterCount; ++c) {
    const int t = clusters.threshold(static_cast<Subcluster>(c));
    EXPECT_GT(t, 0) << subcluster_name(static_cast<Subcluster>(c));
    EXPECT_LE(t, clusters.dimension());
  }
}

TEST(TrainedClusters, TrainingFlowAssessesWithinThreshold) {
  const auto records = training_records(500);
  const TrainedClusters clusters(records, fast_config(), 9);
  util::Rng rng{10};
  int anomalous = 0;
  for (std::size_t i = 0; i < records.size(); i += 10) {
    const auto a = clusters.assess(records[i], rng);
    anomalous += a.anomalous ? 1 : 0;
  }
  // Flows the structure was trained on are almost never anomalous (KOR
  // approximation noise allows rare misses).
  EXPECT_LE(anomalous, 3);
}

TEST(TrainedClusters, AssessBatchMatchesAssessBitForBit) {
  const auto records = training_records(600);
  const TrainedClusters clusters(records, fast_config(), 14);
  const auto mixed = training_records(400, 3);

  // Per-flow reference: each flow gets its own RNG, as the engine's
  // per-flow probe-seed derivation does.
  std::vector<util::Rng> serial_rngs;
  std::vector<util::Rng> batch_rngs;
  for (std::size_t i = 0; i < mixed.size(); ++i) {
    serial_rngs.emplace_back(5000 + 11 * i);
    batch_rngs.emplace_back(5000 + 11 * i);
  }
  std::vector<TrainedClusters::Assessment> batched(mixed.size());
  TrainedClusters::BatchScratch scratch;
  clusters.assess_batch(mixed, batch_rngs, batched, scratch);
  for (std::size_t i = 0; i < mixed.size(); ++i) {
    const auto serial = clusters.assess(mixed[i], serial_rngs[i]);
    EXPECT_EQ(serial.anomalous, batched[i].anomalous) << "flow " << i;
    EXPECT_EQ(serial.cluster, batched[i].cluster) << "flow " << i;
    EXPECT_EQ(serial.distance, batched[i].distance) << "flow " << i;
    EXPECT_EQ(serial.threshold, batched[i].threshold) << "flow " << i;
    EXPECT_EQ(serial_rngs[i](), batch_rngs[i]()) << "flow " << i;
  }
}

TEST(TrainedClusters, AssessBatchCountsEveryQueryOnce) {
  const auto records = training_records(500);
  const TrainedClusters clusters(records, fast_config(), 15);
  const auto queries = training_records(100, 4);
  std::vector<util::Rng> rngs(queries.size(), util::Rng{9});
  std::vector<TrainedClusters::Assessment> out(queries.size());
  TrainedClusters::BatchScratch scratch;
  const auto before = clusters.stats();
  clusters.assess_batch(queries, rngs, out, scratch);
  const auto after = clusters.stats();
  EXPECT_EQ(after.assessments - before.assessments, queries.size());
}

TEST(TrainedClusters, FreshNormalFlowsMostlyPass) {
  const auto records = training_records(800, 1);
  const TrainedClusters clusters(records, fast_config(), 11);
  const auto fresh = training_records(300, 2);  // different seed
  util::Rng rng{12};
  int anomalous = 0;
  for (const auto& record : fresh) {
    anomalous += clusters.assess(record, rng).anomalous ? 1 : 0;
  }
  EXPECT_LT(static_cast<double>(anomalous) / static_cast<double>(fresh.size()), 0.08);
}

TEST(TrainedClusters, FloodIsAnomalous) {
  const auto records = training_records(800);
  const TrainedClusters clusters(records, fast_config(), 13);
  util::Rng rng{14};
  // TFN2K-style udp flood: 3000 packets x 1000 B in 2 s.
  const auto flood = make_record(17, 7777, 3000, 3000000, 2000);
  const auto assessment = clusters.assess(flood, rng);
  EXPECT_EQ(assessment.cluster, Subcluster::kUdp);
  EXPECT_TRUE(assessment.anomalous);
}

TEST(TrainedClusters, TinyProbeIsAnomalousInHttpCluster) {
  const auto records = training_records(800);
  const TrainedClusters clusters(records, fast_config(), 15);
  util::Rng rng{16};
  // 1-packet 40-byte SYN at tcp/80: far below the http cluster's floor.
  const auto probe = make_record(6, 80, 1, 40, 0);
  const auto assessment = clusters.assess(probe, rng);
  EXPECT_EQ(assessment.cluster, Subcluster::kHttp);
  EXPECT_TRUE(assessment.anomalous);
}

TEST(TrainedClusters, EmptySubclusterReportsAnomalous) {
  // Train with http flows only; an icmp query has no neighbors.
  std::vector<netflow::V5Record> records;
  for (int i = 0; i < 50; ++i) {
    records.push_back(make_record(6, 80, 10 + static_cast<std::uint32_t>(i), 5000));
  }
  const TrainedClusters clusters(records, fast_config(), 17);
  util::Rng rng{18};
  const auto assessment = clusters.assess(make_record(1, 0), rng);
  EXPECT_EQ(assessment.cluster, Subcluster::kIcmp);
  EXPECT_TRUE(assessment.anomalous);
  EXPECT_EQ(assessment.distance, -1);
}

TEST(TrainedClusters, ExactIndexMatchesClassification) {
  ClusterConfig config = fast_config();
  config.use_exact_nns = true;
  const auto records = training_records(400);
  const TrainedClusters clusters(records, config, 19);
  util::Rng rng{20};
  const auto flood = make_record(17, 7777, 3000, 3000000, 2000);
  EXPECT_TRUE(clusters.assess(flood, rng).anomalous);
  const auto assessment = clusters.assess(records[7], rng);
  EXPECT_FALSE(assessment.anomalous);
  EXPECT_EQ(assessment.distance, 0);  // exact index finds the identical flow
}

TEST(TrainedClusters, HigherPercentileRaisesThreshold) {
  const auto records = training_records(500);
  ClusterConfig strict = fast_config();
  strict.threshold_percentile = 0.5;
  ClusterConfig loose = fast_config();
  loose.threshold_percentile = 0.999;
  const TrainedClusters a(records, strict, 21);
  const TrainedClusters b(records, loose, 21);
  int raised = 0;
  for (int c = 0; c < kSubclusterCount; ++c) {
    EXPECT_LE(a.threshold(static_cast<Subcluster>(c)),
              b.threshold(static_cast<Subcluster>(c)));
    raised += b.threshold(static_cast<Subcluster>(c)) >
                      a.threshold(static_cast<Subcluster>(c))
                  ? 1
                  : 0;
  }
  EXPECT_GT(raised, 0);
}

TEST(TrainedClusters, EncodeUsesFiveStatistics) {
  const auto records = training_records(100);
  const TrainedClusters clusters(records, fast_config(), 22);
  const auto r1 = make_record(6, 80, 10, 5000, 1000);
  auto r2 = r1;
  r2.bytes = 500000;  // only byte count (and bit rate) differ
  EXPECT_GT(clusters.encode(r1).hamming_distance(clusters.encode(r2)), 0);
}

}  // namespace
}  // namespace infilter::core

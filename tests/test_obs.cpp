// The observability layer: counter/gauge/histogram semantics, registry
// snapshot isolation, and the Prometheus / JSON exposition formats.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/pipeline.h"
#include "obs/stage_timer.h"

using namespace infilter;

namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  obs::Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.inc();
  counter.inc(41);
  EXPECT_EQ(counter.value(), 42u);
}

TEST(Gauge, SetAndAdd) {
  obs::Gauge gauge;
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
  gauge.set(2.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.5);
  gauge.add(-4.0);
  EXPECT_DOUBLE_EQ(gauge.value(), -1.5);
}

TEST(Histogram, BucketBoundsAreInclusiveUpperBounds) {
  obs::Histogram h({1.0, 2.0, 4.0});
  h.observe(0.5);  // <= 1   -> bucket 0
  h.observe(1.0);  // == 1   -> bucket 0 (inclusive)
  h.observe(1.5);  // <= 2   -> bucket 1
  h.observe(4.0);  // == 4   -> bucket 2
  h.observe(9.0);  // > last -> overflow
  const auto snapshot = h.snapshot();
  ASSERT_EQ(snapshot.counts.size(), 4u);
  EXPECT_EQ(snapshot.counts[0], 2u);
  EXPECT_EQ(snapshot.counts[1], 1u);
  EXPECT_EQ(snapshot.counts[2], 1u);
  EXPECT_EQ(snapshot.counts[3], 1u);  // overflow
  EXPECT_EQ(snapshot.count, 5u);
  EXPECT_DOUBLE_EQ(snapshot.sum, 0.5 + 1.0 + 1.5 + 4.0 + 9.0);
}

TEST(Histogram, ExponentialBounds) {
  const auto bounds = obs::Histogram::exponential_bounds(0.5, 2.0, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 0.5);
  EXPECT_DOUBLE_EQ(bounds[1], 1.0);
  EXPECT_DOUBLE_EQ(bounds[2], 2.0);
  EXPECT_DOUBLE_EQ(bounds[3], 4.0);
}

TEST(Histogram, QuantileInterpolatesWithinBucket) {
  obs::Histogram h({10.0, 20.0, 40.0});
  for (int i = 0; i < 10; ++i) h.observe(5.0);   // bucket (0, 10]
  for (int i = 0; i < 10; ++i) h.observe(15.0);  // bucket (10, 20]
  const auto snapshot = h.snapshot();
  // Rank 10 of 20 is the last observation of the first bucket: its upper
  // edge. Rank 20 is the last of the second.
  EXPECT_DOUBLE_EQ(snapshot.quantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(snapshot.quantile(1.0), 20.0);
  // Rank 15 sits halfway through the (10, 20] bucket.
  EXPECT_DOUBLE_EQ(snapshot.quantile(0.75), 15.0);
  EXPECT_DOUBLE_EQ(snapshot.mean(), 10.0);
}

TEST(Histogram, QuantileEdgeCases) {
  obs::Histogram empty({1.0});
  EXPECT_DOUBLE_EQ(empty.snapshot().quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(empty.snapshot().mean(), 0.0);

  // All mass in overflow: quantiles clamp to the last finite bound.
  obs::Histogram overflow({1.0, 2.0});
  overflow.observe(100.0);
  EXPECT_DOUBLE_EQ(overflow.snapshot().quantile(0.5), 2.0);
}

TEST(Registry, RegistrationIsIdempotent) {
  obs::Registry registry;
  auto& a = registry.counter("x_total", "a counter");
  auto& b = registry.counter("x_total");
  EXPECT_EQ(&a, &b);
  a.inc(3);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_EQ(registry.size(), 1u);

  auto& h1 = registry.histogram("h_us", {1.0, 2.0});
  auto& h2 = registry.histogram("h_us", {9.0});  // bounds ignored on re-reg
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds().size(), 2u);
}

TEST(Registry, SnapshotIsIsolatedFromLaterUpdates) {
  obs::Registry registry;
  auto& counter = registry.counter("events_total");
  auto& histogram = registry.histogram("lat_us", {1.0, 10.0});
  counter.inc(5);
  histogram.observe(0.5);

  const auto snapshot = registry.snapshot();
  counter.inc(100);
  histogram.observe(0.5);

  EXPECT_DOUBLE_EQ(snapshot.value("events_total"), 5.0);
  const auto* h = snapshot.histogram("lat_us");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 1u);
  EXPECT_EQ(counter.value(), 105u);
}

TEST(Registry, SnapshotSortsByNameAndFindsMetrics) {
  obs::Registry registry;
  registry.counter("zzz_total").inc();
  registry.gauge("aaa").set(1.0);
  const auto snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.metrics.size(), 2u);
  EXPECT_EQ(snapshot.metrics[0].name, "aaa");
  EXPECT_EQ(snapshot.metrics[1].name, "zzz_total");
  EXPECT_EQ(snapshot.find("missing"), nullptr);
  EXPECT_DOUBLE_EQ(snapshot.value("missing", -7.0), -7.0);
}

TEST(Registry, CallbackMetricsAreSampledAtSnapshotTime) {
  obs::Registry registry;
  std::uint64_t ticks = 0;
  double level = 0.0;
  registry.counter_fn("ticks_total", [&] { return ticks; });
  registry.gauge_fn("level", [&] { return level; });
  // Re-registration of a callback name is a no-op.
  registry.counter_fn("ticks_total", [] { return std::uint64_t{999}; });

  ticks = 12;
  level = 3.5;
  const auto snapshot = registry.snapshot();
  EXPECT_DOUBLE_EQ(snapshot.value("ticks_total"), 12.0);
  EXPECT_DOUBLE_EQ(snapshot.value("level"), 3.5);
}

TEST(StageTimer, RecordsIntoHistogramOnceAndNullDisables) {
  obs::Histogram h({1e9});
  {
    obs::StageTimer timer(&h);
    const double elapsed = timer.stop();
    EXPECT_GE(elapsed, 0.0);
    EXPECT_DOUBLE_EQ(timer.stop(), 0.0);  // idempotent
  }
  EXPECT_EQ(h.count(), 1u);

  obs::StageTimer disabled(nullptr);
  EXPECT_DOUBLE_EQ(disabled.stop(), 0.0);
}

TEST(PipelineMetrics, RegistersTheDocumentedSchema) {
  obs::Registry registry;
  obs::PipelineMetrics metrics(registry);
  metrics.flows_total->inc(2);
  metrics.stage_eia_us->observe(1.0);
  const auto snapshot = registry.snapshot();
  EXPECT_DOUBLE_EQ(snapshot.value("infilter_flows_total"), 2.0);
  EXPECT_NE(snapshot.histogram("infilter_stage_eia_latency_us"), nullptr);
  EXPECT_NE(snapshot.histogram("infilter_process_latency_us"), nullptr);
  EXPECT_NE(snapshot.find("infilter_verdict_cleared_learned_total"), nullptr);
  // Two engines sharing a registry share the instruments.
  obs::PipelineMetrics again(registry);
  EXPECT_EQ(again.flows_total, metrics.flows_total);
}

TEST(Export, FormatNumber) {
  EXPECT_EQ(obs::format_number(42.0), "42");
  EXPECT_EQ(obs::format_number(-3.0), "-3");
  EXPECT_EQ(obs::format_number(2.5), "2.5");
}

TEST(Export, PrometheusTextFormat) {
  obs::Registry registry;
  registry.counter("requests_total", "Total requests").inc(3);
  auto& h = registry.histogram("latency_us", {1.0, 2.0}, "Latency");
  h.observe(0.5);
  h.observe(1.5);
  h.observe(99.0);

  const std::string expected =
      "# HELP latency_us Latency\n"
      "# TYPE latency_us histogram\n"
      "latency_us_bucket{le=\"1\"} 1\n"
      "latency_us_bucket{le=\"2\"} 2\n"
      "latency_us_bucket{le=\"+Inf\"} 3\n"
      "latency_us_sum 101\n"
      "latency_us_count 3\n"
      "# HELP requests_total Total requests\n"
      "# TYPE requests_total counter\n"
      "requests_total 3\n";
  EXPECT_EQ(obs::to_prometheus(registry.snapshot()), expected);
}

TEST(Export, JsonFormat) {
  obs::Registry registry;
  registry.gauge("depth").set(1.5);
  auto& h = registry.histogram("t_us", {2.0});
  h.observe(1.0);

  const std::string expected =
      "{\"metrics\":["
      "{\"name\":\"depth\",\"kind\":\"gauge\",\"value\":1.5},"
      "{\"name\":\"t_us\",\"kind\":\"histogram\",\"count\":1,\"sum\":1,"
      "\"buckets\":[{\"le\":2,\"count\":1}],\"overflow\":0,"
      "\"p50\":2,\"p95\":2,\"p99\":2,\"p999\":2}"
      "]}";
  EXPECT_EQ(obs::to_json(registry.snapshot()), expected);
}

// Text-exposition-format conformance, checked by parsing the output
// rather than pinning it: histogram buckets must be cumulative and
// monotone, the +Inf bucket must exist and equal _count, _sum/_count
// series must be present, and HELP text must escape backslash + newline.
TEST(Export, PrometheusConformance) {
  obs::Registry registry;
  registry.counter("evil_total", "line one\nline two with a \\ backslash").inc(7);
  auto& h = registry.histogram("lat_us", {1.0, 2.0, 4.0}, "Latency");
  h.observe(0.5);
  h.observe(3.0);
  h.observe(3.5);
  h.observe(50.0);  // overflow

  const std::string text = obs::to_prometheus(registry.snapshot());

  // HELP escaping: the raw newline and backslash must not survive.
  EXPECT_NE(text.find("# HELP evil_total line one\\nline two with a \\\\ backslash\n"),
            std::string::npos);
  EXPECT_EQ(text.find("line one\nline two"), std::string::npos);

  // Parse every lat_us_bucket line in order.
  std::vector<std::pair<std::string, double>> buckets;  // (le, cumulative)
  double sum_value = -1.0;
  double count_value = -1.0;
  std::size_t type_lines = 0;
  std::size_t at = 0;
  while (at < text.size()) {
    const auto end = text.find('\n', at);
    const std::string line = text.substr(at, end - at);
    at = end == std::string::npos ? text.size() : end + 1;
    if (line.rfind("# TYPE lat_us ", 0) == 0) {
      ++type_lines;
      EXPECT_EQ(line, "# TYPE lat_us histogram");
    } else if (line.rfind("lat_us_bucket{le=\"", 0) == 0) {
      const auto quote = line.find('"', 18);
      ASSERT_NE(quote, std::string::npos);
      const auto space = line.rfind(' ');
      buckets.emplace_back(line.substr(18, quote - 18),
                           std::stod(line.substr(space + 1)));
    } else if (line.rfind("lat_us_sum ", 0) == 0) {
      sum_value = std::stod(line.substr(11));
    } else if (line.rfind("lat_us_count ", 0) == 0) {
      count_value = std::stod(line.substr(13));
    }
  }

  EXPECT_EQ(type_lines, 1u);
  ASSERT_EQ(buckets.size(), 4u);  // three finite bounds + the +Inf terminator
  EXPECT_EQ(buckets.back().first, "+Inf");
  for (std::size_t b = 1; b < buckets.size(); ++b) {
    EXPECT_GE(buckets[b].second, buckets[b - 1].second)
        << "bucket counts must be cumulative";
  }
  // Cumulative values: 1 (<=1), 1 (<=2), 3 (<=4), 4 (+Inf).
  EXPECT_DOUBLE_EQ(buckets[0].second, 1.0);
  EXPECT_DOUBLE_EQ(buckets[1].second, 1.0);
  EXPECT_DOUBLE_EQ(buckets[2].second, 3.0);
  EXPECT_DOUBLE_EQ(buckets[3].second, 4.0);
  EXPECT_DOUBLE_EQ(count_value, 4.0);
  EXPECT_DOUBLE_EQ(buckets.back().second, count_value)
      << "+Inf bucket must equal _count";
  EXPECT_DOUBLE_EQ(sum_value, 0.5 + 3.0 + 3.5 + 50.0);
}

}  // namespace

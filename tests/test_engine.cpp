// Tests for the InFilter analysis engine (core/engine.h): the Normal
// processing phase of Figure 12 in both BI and EI configurations.

#include "core/engine.h"

#include <gtest/gtest.h>

#include "dagflow/dagflow.h"
#include "traffic/normal.h"

namespace infilter::core {
namespace {

constexpr IngressId kAs1 = 9001;
constexpr IngressId kAs2 = 9002;

net::IPv4Address ip(const char* text) { return *net::IPv4Address::parse(text); }

netflow::V5Record flow_from(net::IPv4Address src, std::uint16_t dst_port = 80,
                            std::uint8_t proto = 6, std::uint32_t packets = 20,
                            std::uint32_t bytes = 9000, std::uint32_t duration = 800) {
  netflow::V5Record r;
  r.src_ip = src;
  r.dst_ip = net::IPv4Address{100, 64, 0, 1};
  r.proto = proto;
  r.src_port = 44000;
  r.dst_port = dst_port;
  r.packets = packets;
  r.bytes = bytes;
  r.first = 0;
  r.last = duration;
  return r;
}

EngineConfig basic_config() {
  EngineConfig c;
  c.mode = EngineMode::kBasic;
  c.seed = 5;
  return c;
}

EngineConfig enhanced_config() {
  EngineConfig c;
  c.mode = EngineMode::kEnhanced;
  c.cluster.bits_per_feature = 48;  // faster tests
  c.seed = 5;
  return c;
}

std::vector<netflow::V5Record> normal_records(std::size_t count, std::uint64_t seed) {
  traffic::NormalTrafficModel model;
  util::Rng rng{seed};
  const auto trace = model.generate(count, 0, rng);
  dagflow::Dagflow replayer(
      dagflow::DagflowConfig{},
      dagflow::AddressPool::from_subblocks({*net::SubBlock::parse("1a")}), seed);
  std::vector<netflow::V5Record> records;
  for (const auto& labeled : replayer.replay(trace)) records.push_back(labeled.record);
  return records;
}

TEST(BasicInFilter, ExpectedSourcePasses) {
  InFilterEngine engine(basic_config());
  engine.add_expected(kAs1, *net::Prefix::parse("3.0.0.0/11"));
  const auto verdict = engine.process(flow_from(ip("3.0.0.1")), kAs1, 1000);
  EXPECT_FALSE(verdict.attack);
  EXPECT_FALSE(verdict.suspect);
}

TEST(BasicInFilter, WrongIngressFlags) {
  InFilterEngine engine(basic_config());
  engine.add_expected(kAs1, *net::Prefix::parse("3.0.0.0/11"));
  engine.add_expected(kAs2, *net::Prefix::parse("3.32.0.0/11"));
  // A source expected at AS2 arriving at AS1 (case a of Section 5.2).
  const auto verdict = engine.process(flow_from(ip("3.40.0.1")), kAs1, 1000);
  EXPECT_TRUE(verdict.attack);
  EXPECT_TRUE(verdict.suspect);
  EXPECT_EQ(verdict.stage, alert::DetectionStage::kEiaMismatch);
}

TEST(BasicInFilter, UnknownSourceFlags) {
  InFilterEngine engine(basic_config());
  engine.add_expected(kAs1, *net::Prefix::parse("3.0.0.0/11"));
  const auto verdict = engine.process(flow_from(ip("200.1.1.1")), kAs1, 1000);
  EXPECT_TRUE(verdict.attack);
}

TEST(BasicInFilter, EmitsIdmefAlertWithContext) {
  alert::CollectingSink sink;
  InFilterEngine engine(basic_config(), &sink);
  engine.add_expected(kAs1, *net::Prefix::parse("3.0.0.0/11"));
  engine.add_expected(kAs2, *net::Prefix::parse("3.32.0.0/11"));
  (void)engine.process(flow_from(ip("3.40.0.1")), kAs1, 777);
  ASSERT_EQ(sink.alerts().size(), 1u);
  const auto& alert = sink.alerts().front();
  EXPECT_EQ(alert.ingress_port, kAs1);
  EXPECT_EQ(alert.expected_ingress, kAs2);
  EXPECT_EQ(alert.create_time, 777u);
  EXPECT_EQ(alert.stage, alert::DetectionStage::kEiaMismatch);
  EXPECT_NE(alert.to_idmef_xml().find("eia-mismatch"), std::string::npos);
}

TEST(BasicInFilter, AutoLearnsPersistentRouteChange) {
  EngineConfig config = basic_config();
  config.eia.learn_threshold = 5;
  InFilterEngine engine(config);
  engine.add_expected(kAs1, *net::Prefix::parse("3.0.0.0/11"));
  const auto newcomer = ip("3.40.0.1");
  int flagged = 0;
  for (int i = 0; i < 10; ++i) {
    flagged += engine.process(flow_from(newcomer), kAs1, 1000 + i).attack ? 1 : 0;
  }
  // First learn_threshold - 1 flows flagged, the learning flow and
  // everything after pass.
  EXPECT_EQ(flagged, 4);
  EXPECT_TRUE(engine.eia().is_expected(kAs1, newcomer));
}

class EnhancedEngineTest : public ::testing::Test {
 protected:
  EnhancedEngineTest() : engine_(enhanced_config()) {
    engine_.add_expected(kAs1, *net::Prefix::parse("3.0.0.0/11"));
    engine_.add_expected(kAs2, *net::Prefix::parse("3.32.0.0/11"));
    engine_.train(normal_records(700, 3));
  }
  InFilterEngine engine_;
};

TEST_F(EnhancedEngineTest, ExpectedSourceNeverAnalyzed) {
  const auto verdict = engine_.process(flow_from(ip("3.0.0.1")), kAs1, 1000);
  EXPECT_FALSE(verdict.suspect);
  EXPECT_FALSE(verdict.nns.has_value());
}

TEST_F(EnhancedEngineTest, SuspectNormalLookingFlowCleared) {
  // A mis-ingressed but ordinary http flow: EIA flags it, NNS clears it.
  const auto verdict = engine_.process(flow_from(ip("3.40.0.1")), kAs1, 1000);
  EXPECT_TRUE(verdict.suspect);
  EXPECT_FALSE(verdict.attack) << "normal-shaped flow should pass NNS";
  ASSERT_TRUE(verdict.nns.has_value());
  EXPECT_LE(verdict.nns->distance, verdict.nns->threshold);
}

TEST_F(EnhancedEngineTest, SuspectFloodFlaggedByNns) {
  const auto flood = flow_from(ip("3.40.0.2"), 7777, 17, 4000, 4000000, 2000);
  const auto verdict = engine_.process(flood, kAs1, 1000);
  EXPECT_TRUE(verdict.attack);
  EXPECT_EQ(verdict.stage, alert::DetectionStage::kNnsDistance);
}

TEST_F(EnhancedEngineTest, NetworkScanFlaggedByScanAnalysis) {
  // Slammer-style: spoofed single-packet UDP flows to port 1434 across
  // many hosts, sources spoofed across many /24s (so EIA auto-learning
  // cannot absorb them). Scan analysis must trip before NNS settles it.
  bool scan_flagged = false;
  for (std::uint32_t i = 0; i < 60 && !scan_flagged; ++i) {
    auto record = flow_from(
        net::IPv4Address{3, 40, static_cast<std::uint8_t>(i), 3}, 1434, 17, 1, 404, 0);
    record.dst_ip = net::IPv4Address{(100u << 24) | (64u << 16) | i};
    const auto verdict = engine_.process(record, kAs1, 1000 + i);
    scan_flagged = verdict.attack && verdict.stage == alert::DetectionStage::kScanAnalysis;
  }
  EXPECT_TRUE(scan_flagged);
}

TEST_F(EnhancedEngineTest, HostScanFlaggedByScanAnalysis) {
  bool scan_flagged = false;
  for (std::uint16_t port = 1; port < 60 && !scan_flagged; ++port) {
    auto record = flow_from(
        net::IPv4Address{3, 40, static_cast<std::uint8_t>(port), 4}, port, 6, 1, 40, 0);
    const auto verdict = engine_.process(record, kAs1, 1000 + port);
    scan_flagged = verdict.attack && verdict.stage == alert::DetectionStage::kScanAnalysis;
  }
  EXPECT_TRUE(scan_flagged);
}

TEST(EnhancedEngine, ScanDisabledFallsThroughToNns) {
  EngineConfig config = enhanced_config();
  config.use_scan_analysis = false;
  InFilterEngine engine(config);
  engine.add_expected(kAs1, *net::Prefix::parse("3.0.0.0/11"));
  engine.train(normal_records(500, 4));
  // The slammer sweep now reaches NNS per flow; verdicts may pass or flag,
  // but never via scan analysis.
  for (std::uint32_t i = 0; i < 40; ++i) {
    auto record = flow_from(ip("99.1.1.1"), 1434, 17, 1, 404, 0);
    record.dst_ip = net::IPv4Address{(100u << 24) | (64u << 16) | i};
    const auto verdict = engine.process(record, kAs1, 1000 + i);
    if (verdict.attack) {
      EXPECT_NE(verdict.stage, alert::DetectionStage::kScanAnalysis);
    }
  }
}

TEST(EnhancedEngine, BothStagesDisabledDegeneratesToBasic) {
  EngineConfig config = enhanced_config();
  config.use_scan_analysis = false;
  config.use_nns = false;
  InFilterEngine engine(config);
  engine.add_expected(kAs1, *net::Prefix::parse("3.0.0.0/11"));
  const auto verdict = engine.process(flow_from(ip("99.1.1.1")), kAs1, 1000);
  EXPECT_TRUE(verdict.attack);
  EXPECT_EQ(verdict.stage, alert::DetectionStage::kEiaMismatch);
}

TEST(EnhancedEngine, UntrainedEngineStillRunsEiaAndScan) {
  EngineConfig config = enhanced_config();
  InFilterEngine engine(config);  // no train() call
  engine.add_expected(kAs1, *net::Prefix::parse("3.0.0.0/11"));
  const auto verdict = engine.process(flow_from(ip("99.1.1.1")), kAs1, 1000);
  // Without clusters the NNS stage cannot run; the flow falls back to the
  // basic verdict.
  EXPECT_TRUE(verdict.suspect);
  EXPECT_TRUE(verdict.attack);
}

TEST(EnhancedEngine, FlowCountersAdvance) {
  alert::CollectingSink sink;
  InFilterEngine engine(basic_config(), &sink);
  engine.add_expected(kAs1, *net::Prefix::parse("3.0.0.0/11"));
  (void)engine.process(flow_from(ip("3.0.0.1")), kAs1, 1);
  (void)engine.process(flow_from(ip("99.0.0.1")), kAs1, 2);
  EXPECT_EQ(engine.flows_processed(), 2u);
  EXPECT_EQ(engine.alerts_emitted(), 1u);
  EXPECT_EQ(engine.alerts_emitted(), sink.alerts().size());
}

TEST(EnhancedEngine, AlertsEmittedCountsDeliveredAlertsOnly) {
  // Same traffic, no sink: the attack verdict stands but nothing is
  // delivered, so alerts_emitted() stays 0 and the verdict counter moves.
  InFilterEngine engine(basic_config());
  engine.add_expected(kAs1, *net::Prefix::parse("3.0.0.0/11"));
  const auto verdict = engine.process(flow_from(ip("99.0.0.1")), kAs1, 1);
  EXPECT_TRUE(verdict.attack);
  EXPECT_EQ(engine.alerts_emitted(), 0u);
  EXPECT_EQ(engine.metrics().verdict_attack_eia->value(), 1u);
}

/// Every processed flow must land in exactly one terminal verdict counter,
/// and the stage counters must reconcile with each other (the invariants
/// documented in obs/pipeline.h).
void expect_reconciled(const InFilterEngine& engine) {
  const auto& m = engine.metrics();
  const std::uint64_t terminal =
      m.verdict_legal->value() + m.verdict_attack_eia->value() +
      m.verdict_attack_scan->value() + m.verdict_attack_nns->value() +
      m.verdict_cleared_nns->value() + m.verdict_cleared_learned->value();
  EXPECT_EQ(m.flows_total->value(), terminal);
  EXPECT_EQ(m.flows_total->value(), m.eia_hits->value() + m.eia_misses->value());
  EXPECT_EQ(m.nns_assessed->value(), m.nns_normal->value() + m.nns_anomalous->value());
  EXPECT_EQ(m.alerts_total->value(), m.alerts_eia->value() + m.alerts_scan->value() +
                                         m.alerts_nns->value());
  EXPECT_EQ(m.process_us->count(), m.flows_total->value());
}

TEST_F(EnhancedEngineTest, StageCountersReconcile) {
  util::Rng rng{99};
  for (int i = 0; i < 200; ++i) {
    // Mix of in-EIA, mis-ingressed, and unknown sources.
    const std::uint32_t pick = static_cast<std::uint32_t>(rng.below(3));
    auto record = flow_from(pick == 0   ? ip("3.0.0.7")
                            : pick == 1 ? ip("3.40.0.7")
                                        : net::IPv4Address{static_cast<std::uint32_t>(
                                              (200u << 24) + rng.below(1u << 16))},
                            static_cast<std::uint16_t>(1 + rng.below(4000)));
    (void)engine_.process(record, kAs1, 1000 + static_cast<util::TimeMs>(i));
  }
  const auto& m = engine_.metrics();
  EXPECT_EQ(m.flows_total->value(), 200u);
  // Enhanced mode with scan analysis on: every EIA miss is scan-analyzed.
  EXPECT_EQ(m.scan_analyzed->value(), m.eia_misses->value());
  expect_reconciled(engine_);
}

TEST(EnhancedEngine, BasicModeCountersReconcile) {
  alert::CollectingSink sink;
  EngineConfig config = basic_config();
  config.eia.learn_threshold = 3;
  InFilterEngine engine(config, &sink);
  engine.add_expected(kAs1, *net::Prefix::parse("3.0.0.0/11"));
  for (int i = 0; i < 10; ++i) {
    (void)engine.process(flow_from(ip("3.0.0.1")), kAs1, 1 + i);
    (void)engine.process(flow_from(ip("99.0.0.1")), kAs1, 1 + i);  // learns at 3
  }
  expect_reconciled(engine);
  const auto& m = engine.metrics();
  EXPECT_EQ(m.eia_learned->value(), 1u);
  EXPECT_EQ(m.alerts_total->value(), sink.alerts().size());
}

TEST(EnhancedEngine, ExternalRegistryReceivesPipelineMetrics) {
  obs::Registry registry;
  EngineConfig config = basic_config();
  config.registry = &registry;
  InFilterEngine engine(config);
  EXPECT_EQ(&engine.registry(), &registry);
  engine.add_expected(kAs1, *net::Prefix::parse("3.0.0.0/11"));
  (void)engine.process(flow_from(ip("3.0.0.1")), kAs1, 1);

  const auto snapshot = registry.snapshot();
  EXPECT_DOUBLE_EQ(snapshot.value("infilter_flows_total"), 1.0);
  EXPECT_DOUBLE_EQ(snapshot.value("infilter_verdict_legal_total"), 1.0);
  // Component pull-metrics are registered alongside the pipeline set.
  EXPECT_DOUBLE_EQ(snapshot.value("infilter_eia_lookups_total"), 1.0);
  EXPECT_DOUBLE_EQ(snapshot.value("infilter_eia_ingresses"), 1.0);
}

TEST(EnhancedEngine, SharedClustersBehaveLikeOwnTraining) {
  const auto records = normal_records(600, 6);
  EngineConfig config = enhanced_config();
  InFilterEngine own(config);
  own.add_expected(kAs1, *net::Prefix::parse("3.0.0.0/11"));
  own.train(records);

  auto shared = std::make_shared<const TrainedClusters>(records, config.cluster,
                                                        config.seed);
  InFilterEngine borrowed(config);
  borrowed.add_expected(kAs1, *net::Prefix::parse("3.0.0.0/11"));
  borrowed.set_clusters(shared);

  const auto flood = flow_from(ip("99.1.2.3"), 7777, 17, 4000, 4000000, 2000);
  EXPECT_EQ(own.process(flood, kAs1, 1).attack, borrowed.process(flood, kAs1, 1).attack);
}

}  // namespace
}  // namespace infilter::core

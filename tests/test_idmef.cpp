// Tests for IDMEF alerting (alert/idmef.h).

#include "alert/idmef.h"

#include <gtest/gtest.h>

namespace infilter::alert {
namespace {

Alert sample_alert() {
  Alert a;
  a.id = 42;
  a.create_time = 123456;
  a.stage = DetectionStage::kNnsDistance;
  a.source_ip = net::IPv4Address{3, 1, 2, 3};
  a.target_ip = net::IPv4Address{100, 64, 0, 7};
  a.target_port = 80;
  a.proto = 6;
  a.ingress_port = 9001;
  a.expected_ingress = 9004;
  a.nns_distance = 55;
  a.nns_threshold = 30;
  a.classification = "spoofed traffic (nns-distance)";
  return a;
}

TEST(StageName, AllStagesNamed) {
  EXPECT_EQ(stage_name(DetectionStage::kEiaMismatch), "eia-mismatch");
  EXPECT_EQ(stage_name(DetectionStage::kScanAnalysis), "scan-analysis");
  EXPECT_EQ(stage_name(DetectionStage::kNnsDistance), "nns-distance");
}

TEST(IdmefXml, ContainsCoreElements) {
  const auto xml = sample_alert().to_idmef_xml();
  EXPECT_NE(xml.find("<IDMEF-Message"), std::string::npos);
  EXPECT_NE(xml.find("messageid=\"42\""), std::string::npos);
  EXPECT_NE(xml.find("<CreateTime>123456</CreateTime>"), std::string::npos);
  EXPECT_NE(xml.find("spoofed=\"yes\""), std::string::npos);
  EXPECT_NE(xml.find("<address>3.1.2.3</address>"), std::string::npos);
  EXPECT_NE(xml.find("<address>100.64.0.7</address>"), std::string::npos);
  EXPECT_NE(xml.find("<port>80</port>"), std::string::npos);
  EXPECT_NE(xml.find("spoofed traffic (nns-distance)"), std::string::npos);
}

TEST(IdmefXml, NnsDiagnosticsOnlyForNnsStage) {
  auto a = sample_alert();
  EXPECT_NE(a.to_idmef_xml().find("nns-distance\">55"), std::string::npos);
  a.stage = DetectionStage::kEiaMismatch;
  EXPECT_EQ(a.to_idmef_xml().find("meaning=\"nns-distance\""), std::string::npos);
}

TEST(IdmefXml, ExpectedIngressOmittedWhenUnknown) {
  auto a = sample_alert();
  a.expected_ingress = -1;
  EXPECT_EQ(a.to_idmef_xml().find("expected-ingress"), std::string::npos);
}

TEST(IdmefXml, ZeroPortOmitsServiceElement) {
  auto a = sample_alert();
  a.target_port = 0;
  EXPECT_EQ(a.to_idmef_xml().find("<Service>"), std::string::npos);
}

TEST(CollectingSink, StoresAlertsInOrder) {
  CollectingSink sink;
  auto a = sample_alert();
  a.id = 1;
  sink.consume(a);
  a.id = 2;
  sink.consume(a);
  ASSERT_EQ(sink.alerts().size(), 2u);
  EXPECT_EQ(sink.alerts()[0].id, 1u);
  EXPECT_EQ(sink.alerts()[1].id, 2u);
  sink.clear();
  EXPECT_TRUE(sink.alerts().empty());
}

}  // namespace
}  // namespace infilter::alert

// Tests for the synthetic AS topology (routing/topology.h).

#include "routing/topology.h"

#include <gtest/gtest.h>

#include <queue>
#include <set>

namespace infilter::routing {
namespace {

TopologyConfig small_config() {
  TopologyConfig c;
  c.tier1_count = 4;
  c.tier2_count = 12;
  c.stub_count = 40;
  return c;
}

TEST(AsTopology, GeneratesRequestedCounts) {
  const auto topo = AsTopology::generate(small_config(), 1);
  EXPECT_EQ(topo.as_count(), 4 + 12 + 40);
  int t1 = 0;
  int t2 = 0;
  int stub = 0;
  for (AsId as = 0; as < topo.as_count(); ++as) {
    switch (topo.tier(as)) {
      case Tier::kTier1: ++t1; break;
      case Tier::kTier2: ++t2; break;
      case Tier::kStub: ++stub; break;
    }
  }
  EXPECT_EQ(t1, 4);
  EXPECT_EQ(t2, 12);
  EXPECT_EQ(stub, 40);
}

TEST(AsTopology, DeterministicForSeed) {
  const auto a = AsTopology::generate(small_config(), 7);
  const auto b = AsTopology::generate(small_config(), 7);
  ASSERT_EQ(a.links().size(), b.links().size());
  for (std::size_t i = 0; i < a.links().size(); ++i) {
    EXPECT_EQ(a.links()[i].a, b.links()[i].a);
    EXPECT_EQ(a.links()[i].b, b.links()[i].b);
  }
}

TEST(AsTopology, AdjacencyIsSymmetricWithReversedRelationship) {
  const auto topo = AsTopology::generate(small_config(), 2);
  for (AsId as = 0; as < topo.as_count(); ++as) {
    for (const auto& nb : topo.neighbors(as)) {
      bool found = false;
      for (const auto& back : topo.neighbors(nb.as)) {
        if (back.as == as && back.link_id == nb.link_id) {
          EXPECT_EQ(back.relationship, reverse(nb.relationship));
          found = true;
        }
      }
      EXPECT_TRUE(found) << "missing reverse edge " << as << "<->" << nb.as;
    }
  }
}

TEST(AsTopology, Tier1FormsPeerClique) {
  const auto topo = AsTopology::generate(small_config(), 3);
  for (AsId a = 0; a < 4; ++a) {
    int peers = 0;
    for (const auto& nb : topo.neighbors(a)) {
      if (nb.as < 4) {
        EXPECT_EQ(nb.relationship, Relationship::kPeer);
        ++peers;
      }
    }
    EXPECT_EQ(peers, 3);
  }
}

TEST(AsTopology, EveryNonTier1HasAProvider) {
  const auto topo = AsTopology::generate(small_config(), 4);
  for (AsId as = 4; as < topo.as_count(); ++as) {
    bool has_provider = false;
    for (const auto& nb : topo.neighbors(as)) {
      has_provider |= nb.relationship == Relationship::kProvider;
    }
    EXPECT_TRUE(has_provider) << "AS " << as;
  }
}

TEST(AsTopology, StubsHaveNoCustomers) {
  const auto topo = AsTopology::generate(small_config(), 5);
  for (AsId as = 0; as < topo.as_count(); ++as) {
    if (topo.tier(as) != Tier::kStub) continue;
    for (const auto& nb : topo.neighbors(as)) {
      EXPECT_NE(nb.relationship, Relationship::kCustomer) << "stub " << as;
    }
  }
}

TEST(AsTopology, NoDuplicateAdjacencies) {
  const auto topo = AsTopology::generate(small_config(), 6);
  for (AsId as = 0; as < topo.as_count(); ++as) {
    std::set<AsId> seen;
    for (const auto& nb : topo.neighbors(as)) {
      EXPECT_TRUE(seen.insert(nb.as).second)
          << "duplicate adjacency " << as << "->" << nb.as;
    }
  }
}

TEST(AsTopology, GraphIsConnectedThroughProviders) {
  // Following provider/peer/customer edges in any direction, every AS
  // reaches tier-1 AS 0 (customer-provider chains guarantee it).
  const auto topo = AsTopology::generate(small_config(), 8);
  std::vector<bool> visited(static_cast<std::size_t>(topo.as_count()), false);
  std::queue<AsId> queue;
  queue.push(0);
  visited[0] = true;
  int reached = 0;
  while (!queue.empty()) {
    const AsId at = queue.front();
    queue.pop();
    ++reached;
    for (const auto& nb : topo.neighbors(at)) {
      if (!visited[static_cast<std::size_t>(nb.as)]) {
        visited[static_cast<std::size_t>(nb.as)] = true;
        queue.push(nb.as);
      }
    }
  }
  EXPECT_EQ(reached, topo.as_count());
}

TEST(AsTopology, ParallelCircuitsWithinConfiguredBounds) {
  TopologyConfig config = small_config();
  config.parallel_link_fraction = 1.0;  // force parallel circuits
  const auto topo = AsTopology::generate(config, 9);
  int multi = 0;
  for (const auto& link : topo.links()) {
    EXPECT_GE(link.parallel_circuits, 1);
    EXPECT_LE(link.parallel_circuits, 3);
    multi += link.parallel_circuits > 1 ? 1 : 0;
  }
  EXPECT_EQ(multi, static_cast<int>(topo.links().size()));
}

TEST(AsTopology, ZeroParallelFractionMeansSingleCircuits) {
  TopologyConfig config = small_config();
  config.parallel_link_fraction = 0.0;
  const auto topo = AsTopology::generate(config, 10);
  for (const auto& link : topo.links()) {
    EXPECT_EQ(link.parallel_circuits, 1);
    EXPECT_FALSE(link.circuits_span_subnets);
  }
}

TEST(AsTopology, AsNumbersAreStable) {
  const auto topo = AsTopology::generate(small_config(), 11);
  EXPECT_EQ(topo.as_number(0), 7000);
  EXPECT_EQ(topo.as_number(55), 7055);
}

}  // namespace
}  // namespace infilter::routing

// Tests for the traceback extension (core/traceback.h).

#include "core/traceback.h"

#include <gtest/gtest.h>

#include "dagflow/dagflow.h"
#include "core/engine.h"
#include "traffic/attacks.h"
#include "traffic/normal.h"

namespace infilter::core {
namespace {

alert::Alert make_alert(std::uint64_t time, const char* victim, std::uint16_t port,
                        IngressId ingress) {
  alert::Alert a;
  a.create_time = time;
  a.source_ip = *net::IPv4Address::parse("3.1.2.3");
  a.target_ip = *net::IPv4Address::parse(victim);
  a.target_port = port;
  a.ingress_port = ingress;
  return a;
}

TEST(Traceback, SingleVictimSingleIngressEpisode) {
  TracebackEngine traceback;
  for (int i = 0; i < 5; ++i) {
    traceback.consume(make_alert(1000 + i * 100, "100.64.0.1", 80, 9001));
  }
  const auto episodes = traceback.episodes();
  ASSERT_EQ(episodes.size(), 1u);
  const auto& e = episodes.front();
  EXPECT_EQ(e.alert_count, 5u);
  ASSERT_TRUE(e.victim.has_value());
  EXPECT_EQ(*e.victim, *net::IPv4Address::parse("100.64.0.1"));
  EXPECT_EQ(e.service_port, std::optional<std::uint16_t>{80});
  EXPECT_FALSE(e.distributed());
  EXPECT_EQ(e.primary_ingress(), 9001);
  EXPECT_EQ(e.first_alert, 1000u);
  EXPECT_EQ(e.last_alert, 1400u);
}

TEST(Traceback, GapSplitsEpisodes) {
  TracebackEngine traceback;  // default gap 10 s
  traceback.consume(make_alert(1000, "100.64.0.1", 80, 9001));
  traceback.consume(make_alert(5000, "100.64.0.1", 80, 9001));   // fuses
  traceback.consume(make_alert(40000, "100.64.0.1", 80, 9001));  // new episode
  EXPECT_EQ(traceback.episode_count(), 2u);
}

TEST(Traceback, DistributedAttackAcrossIngresses) {
  TracebackEngine traceback;
  // A DDoS against one victim spraying through three border routers,
  // 9001 carrying half the traffic.
  for (int i = 0; i < 10; ++i) {
    traceback.consume(make_alert(1000 + i, "100.64.0.9", 80,
                                 static_cast<IngressId>(9001 + (i % 4 == 0 ? 1 : 0))));
  }
  for (int i = 0; i < 4; ++i) {
    traceback.consume(make_alert(1100 + i, "100.64.0.9", 80, 9003));
  }
  const auto episodes = traceback.episodes();
  ASSERT_EQ(episodes.size(), 1u);
  const auto& e = episodes.front();
  EXPECT_TRUE(e.distributed());
  ASSERT_EQ(e.ingresses.size(), 3u);
  EXPECT_EQ(e.primary_ingress(), 9001);
  EXPECT_GT(e.ingresses.front().share, e.ingresses.back().share);
  double total = 0;
  for (const auto& evidence : e.ingresses) total += evidence.share;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Traceback, WormSweepGroupsByServicePort) {
  TracebackEngine traceback;
  // Slammer: one alert per distinct victim, all on port 1434.
  for (int i = 0; i < 30; ++i) {
    const std::string victim = "100.64.7." + std::to_string(i + 1);
    traceback.consume(make_alert(1000 + i * 10, victim.c_str(), 1434, 9001));
  }
  const auto episodes = traceback.episodes();
  ASSERT_EQ(episodes.size(), 1u);
  const auto& e = episodes.front();
  EXPECT_FALSE(e.victim.has_value());  // multi-victim
  EXPECT_EQ(e.distinct_victims, 30u);
  EXPECT_EQ(e.service_port, std::optional<std::uint16_t>{1434});
  EXPECT_NE(e.summary().find("30 hosts"), std::string::npos);
}

TEST(Traceback, HostScanClearsServicePort) {
  TracebackEngine traceback;
  for (std::uint16_t port = 1; port <= 20; ++port) {
    traceback.consume(make_alert(1000 + port, "100.64.0.2", port, 9001));
  }
  const auto episodes = traceback.episodes();
  ASSERT_EQ(episodes.size(), 1u);
  EXPECT_FALSE(episodes.front().service_port.has_value());
  EXPECT_TRUE(episodes.front().victim.has_value());
}

TEST(Traceback, UnrelatedVictimsSeparateEpisodes) {
  TracebackEngine traceback;
  traceback.consume(make_alert(1000, "100.64.0.1", 80, 9001));
  traceback.consume(make_alert(1001, "100.64.0.2", 22, 9002));
  EXPECT_EQ(traceback.episode_count(), 2u);
}

TEST(Traceback, ForwardsDownstream) {
  alert::CollectingSink downstream;
  TracebackEngine traceback(TracebackConfig{}, &downstream);
  traceback.consume(make_alert(1000, "100.64.0.1", 80, 9001));
  traceback.consume(make_alert(1001, "100.64.0.1", 80, 9001));
  EXPECT_EQ(downstream.alerts().size(), 2u);
}

TEST(Traceback, EvictsOldestWhenFull) {
  TracebackConfig config;
  config.max_episodes = 3;
  config.episode_gap = 1;  // everything separate
  TracebackEngine traceback(config);
  for (int i = 0; i < 6; ++i) {
    const std::string victim = "100.64.9." + std::to_string(i + 1);
    traceback.consume(make_alert(1000 + i * 100, victim.c_str(), 80, 9001));
  }
  EXPECT_EQ(traceback.episode_count(), 3u);
  // Oldest evicted: remaining episodes are the newest victims.
  const auto episodes = traceback.episodes();
  EXPECT_EQ(*episodes.front().victim, *net::IPv4Address::parse("100.64.9.4"));
}

TEST(Traceback, SummaryNamesDistributedEpisodes) {
  TracebackEngine traceback;
  traceback.consume(make_alert(1000, "100.64.0.1", 80, 9001));
  traceback.consume(make_alert(1001, "100.64.0.1", 80, 9002));
  const auto episodes = traceback.episodes();
  ASSERT_EQ(episodes.size(), 1u);
  EXPECT_NE(episodes.front().summary().find("DISTRIBUTED"), std::string::npos);
  EXPECT_NE(traceback.report().find("episode 1"), std::string::npos);
}

TEST(TracebackIntegration, LocatesTheAttackIngress) {
  // Full chain: engine alerts -> traceback. An nmap Idlescan battery
  // (many ports on one victim -- the deterministic host-scan detector
  // fires, so the alert stream does not hinge on one seed's NNS
  // threshold) enters via Peer AS3; traceback must name ingress 9003 as
  // primary.
  alert::CollectingSink ui;
  TracebackEngine traceback(TracebackConfig{}, &ui);

  EngineConfig config;
  config.cluster.bits_per_feature = 48;
  config.seed = 9;
  InFilterEngine engine(config, &traceback);
  for (int s = 0; s < 10; ++s) {
    for (const auto& block : dagflow::eia_range(s).expand()) {
      engine.add_expected(static_cast<IngressId>(9001 + s), block.prefix());
    }
  }
  {
    traffic::NormalTrafficModel model;
    util::Rng rng{10};
    const auto trace = model.generate(600, 0, rng);
    dagflow::Dagflow trainer(
        dagflow::DagflowConfig{},
        dagflow::AddressPool::from_subblocks({*net::SubBlock::parse("1a")}), 11);
    std::vector<netflow::V5Record> records;
    for (const auto& labeled : trainer.replay(trace)) records.push_back(labeled.record);
    engine.train(records);
  }

  util::Rng rng{12};
  traffic::AttackConfig attack_config;
  attack_config.companion_fraction = 0;
  const auto attack = traffic::generate_attack(traffic::AttackKind::kNmapIdleScan,
                                               attack_config, 1000, rng);
  dagflow::Dagflow attacker(
      dagflow::DagflowConfig{.netflow_port = 9003},
      dagflow::AddressPool::from_subblocks({*net::SubBlock::parse("70a")}), 13);
  for (const auto& flow : attacker.replay(attack)) {
    (void)engine.process(flow.record, flow.arrival_port, flow.record.last);
  }

  ASSERT_GT(ui.alerts().size(), 0u);  // downstream still fed
  const auto episodes = traceback.episodes();
  ASSERT_GE(episodes.size(), 1u);
  // The dominant episode's primary ingress is the true entry point.
  const auto* biggest = &episodes.front();
  for (const auto& episode : episodes) {
    if (episode.alert_count > biggest->alert_count) biggest = &episode;
  }
  EXPECT_EQ(biggest->primary_ingress(), 9003);
}

}  // namespace
}  // namespace infilter::core

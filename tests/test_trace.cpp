// Tests for the flight recorder (obs/trace.h): the SPSC trace ring's
// wraparound and overflow-drop accounting, the Chrome-trace export and its
// flight-recorder (drain-once) semantics, the stall detector, and -- at the
// runtime level -- the span-tiling identity: a sampled record's spans sum
// to exactly the end-to-end latency the histograms report. The concurrency
// tests double as the TSan lane's evidence that snapshots and exports can
// run against live trace-ring writers.

#include "obs/trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "runtime/runtime.h"

namespace infilter {
namespace {

using obs::SpanKind;
using obs::ThreadState;
using obs::TraceEvent;
using obs::Tracer;
using obs::TracerConfig;
using obs::TraceRing;

// -- TraceRing ---------------------------------------------------------------

TEST(TraceRing, CapacityRoundsUpToPowerOfTwoWithMinimumTwo) {
  EXPECT_EQ(TraceRing(0).capacity(), 2u);
  EXPECT_EQ(TraceRing(1).capacity(), 2u);
  EXPECT_EQ(TraceRing(3).capacity(), 4u);
  EXPECT_EQ(TraceRing(1000).capacity(), 1024u);
}

TEST(TraceRing, FifoOrderAcrossManyWraparounds) {
  TraceRing ring(8);
  std::uint64_t next_push = 0;
  std::uint64_t next_pop = 0;
  TraceEvent out;
  // Uneven push/pop rhythm so head and tail cross the wrap point at
  // different offsets (same shape as the SpscRing test).
  for (int round = 0; round < 1000; ++round) {
    for (int i = 0; i < 1 + round % 7; ++i) {
      if (!ring.try_push(TraceEvent{1, 1, next_push, SpanKind::kDecode})) break;
      ++next_push;
    }
    for (int i = 0; i < 1 + round % 5 && ring.try_pop(out); ++i) {
      ASSERT_EQ(out.id, next_pop);
      ++next_pop;
    }
  }
  while (ring.try_pop(out)) {
    ASSERT_EQ(out.id, next_pop);
    ++next_pop;
  }
  EXPECT_EQ(next_pop, next_push);
  EXPECT_TRUE(ring.empty());
}

TEST(TraceRing, FullRingRejectsAndFreedSlotIsReusable) {
  TraceRing ring(4);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring.try_push(TraceEvent{i, 1, i, SpanKind::kEia}));
  }
  EXPECT_FALSE(ring.try_push(TraceEvent{99, 1, 99, SpanKind::kEia}));
  TraceEvent out;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out.id, 0u);
  EXPECT_TRUE(ring.try_push(TraceEvent{4, 1, 4, SpanKind::kEia}));
  for (std::uint64_t expect = 1; expect <= 4; ++expect) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out.id, expect);
  }
}

// -- ThreadLane --------------------------------------------------------------

// A full ring must lose the *new* event (the recorder never blocks or
// overwrites in-flight history) and count every loss.
TEST(ThreadLane, OverflowDropsNewestAndCountsEveryLoss) {
  obs::ThreadLane lane("worker", "worker", /*ring_capacity=*/4, {});
  for (std::uint64_t i = 0; i < 6; ++i) {
    lane.emit(SpanKind::kProcess, 100 + i, 10, i);
  }
  EXPECT_EQ(lane.events_emitted(), 4u);
  EXPECT_EQ(lane.events_dropped(), 2u);

  std::vector<TraceEvent> events;
  lane.drain(events);
  ASSERT_EQ(events.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(events[i].id, i);  // oldest kept

  // Drained capacity is reusable; accounting keeps running totals.
  lane.emit(SpanKind::kProcess, 200, 10, 42);
  EXPECT_EQ(lane.events_emitted(), 5u);
  EXPECT_EQ(lane.events_dropped(), 2u);
}

TEST(ThreadLane, RetireStopsLaneAndDetachesQueueProbe) {
  obs::ThreadLane lane("decode", "decode", 8, [] { return std::size_t{7}; });
  EXPECT_EQ(lane.queue_depth(), 7u);
  EXPECT_EQ(lane.state(), ThreadState::kIdle);
  lane.retire();
  EXPECT_EQ(lane.state(), ThreadState::kStopped);
  EXPECT_EQ(lane.queue_depth(), 0u);  // probe gone, not dangling
}

// -- Tracer ------------------------------------------------------------------

TEST(Tracer, SamplingArithmeticAndMonotonicClock) {
  TracerConfig config;
  config.sample_every = 4;
  Tracer tracer(config);
  EXPECT_TRUE(tracer.sampled(0));
  EXPECT_TRUE(tracer.sampled(4));
  EXPECT_FALSE(tracer.sampled(1));
  EXPECT_FALSE(tracer.sampled(7));

  TracerConfig all;
  all.sample_every = 0;  // coerced to 1: everything sampled
  EXPECT_EQ(Tracer(all).sample_every(), 1u);

  const auto t0 = Tracer::now_ns();
  const auto t1 = Tracer::now_ns();
  EXPECT_NE(t0, 0u);  // 0 means "unsampled" pipeline-wide
  EXPECT_GE(t1, t0);
}

TEST(Tracer, ChromeTraceJsonRebasesDrainsAndNamesThreads) {
  TracerConfig config;
  config.enabled = true;
  Tracer tracer(config);
  auto* recv = tracer.register_thread("recv-0", "receiver");
  auto* scan = tracer.register_thread("scan", "scan");
  // Fabricated stamps: earliest start must rebase to ts 0.000.
  recv->emit(SpanKind::kQueueIngest, 5'000'000'000, 2500, 64);
  scan->emit(SpanKind::kScanNns, 5'000'001'000, 1000, 64);

  const auto json = tracer.chrome_trace_json();
  EXPECT_NE(json.find("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"recv-0\"}"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"scan\"}"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"queue_ingest\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"scan_nns\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":0.000,\"dur\":2.500"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1.000,\"dur\":1.000"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"id\":64}"), std::string::npos);

  // Flight-recorder semantics: a second export has the thread metadata but
  // no span events (they were drained).
  const auto empty = tracer.chrome_trace_json();
  EXPECT_EQ(empty.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(empty.find("\"args\":{\"name\":\"recv-0\"}"), std::string::npos);
}

TEST(Tracer, RegistryExposesCountsRolesAndExternalValueMetrics) {
  obs::Registry external;
  TracerConfig config;
  config.registry = &external;
  Tracer tracer(config);
  auto* a = tracer.register_thread("shard-0", "worker");
  tracer.register_thread("shard-1", "worker");
  tracer.register_thread("decode", "decode");
  a->emit(SpanKind::kProcess, 1, 1, 0);
  tracer.e2e_us->observe(5.0);

  const auto snap = tracer.snapshot();
  EXPECT_DOUBLE_EQ(snap.value("infilter_trace_threads"), 3.0);
  EXPECT_DOUBLE_EQ(snap.value("infilter_pipeline_threads_worker"), 2.0);
  EXPECT_DOUBLE_EQ(snap.value("infilter_pipeline_threads_decode"), 1.0);
  EXPECT_DOUBLE_EQ(snap.value("infilter_trace_events_total"), 1.0);
  EXPECT_DOUBLE_EQ(snap.value("infilter_trace_dropped_total"), 0.0);

  // Value instruments live in the caller's registry; `this`-capturing pull
  // gauges stay tracer-private (the external registry may outlive us).
  const auto ext = external.snapshot();
  ASSERT_NE(ext.histogram("infilter_e2e_latency_us"), nullptr);
  EXPECT_EQ(ext.histogram("infilter_e2e_latency_us")->count, 1u);
  EXPECT_EQ(ext.find("infilter_trace_threads"), nullptr);
  EXPECT_EQ(ext.find("infilter_trace_events_total"), nullptr);

  a->retire();
  const auto after = tracer.snapshot();
  EXPECT_DOUBLE_EQ(after.value("infilter_trace_threads"), 2.0);
  EXPECT_DOUBLE_EQ(after.value("infilter_pipeline_threads_worker"), 1.0);
}

// The stall detector's definition: progress stopped AND input queued.
// Empty-queue idleness and advancing threads are healthy; retired lanes
// are invisible.
TEST(Tracer, StallDetectorFlagsOnlyStuckThreadsWithBacklog) {
  Tracer tracer;
  auto* stuck = tracer.register_thread("stuck", "worker", [] { return std::size_t{3}; });
  auto* idle = tracer.register_thread("idle", "worker", [] { return std::size_t{0}; });
  auto* alive = tracer.register_thread("alive", "worker", [] { return std::size_t{5}; });
  auto* dead = tracer.register_thread("dead", "worker", [] { return std::size_t{9}; });
  stuck->set_state(ThreadState::kBlocked);
  dead->retire();

  // First scan only establishes progress baselines.
  EXPECT_TRUE(tracer.scan_liveness(0.0).empty());

  alive->heartbeat();  // progress between scans: healthy
  const auto stalls = tracer.scan_liveness(0.0);
  ASSERT_EQ(stalls.size(), 1u);
  EXPECT_EQ(stalls[0].name, "stuck");
  EXPECT_EQ(stalls[0].state, ThreadState::kBlocked);
  EXPECT_EQ(stalls[0].queued, 3u);
  EXPECT_GE(stalls[0].stalled_for_ms, 0.0);
  EXPECT_DOUBLE_EQ(tracer.snapshot().value("infilter_trace_threads_stalled"), 1.0);
  (void)idle;

  // Progress clears the flag on the next scan. (Every backlogged lane must
  // advance between scans: with a zero threshold, going quiet for one scan
  // interval *is* a stall.)
  stuck->heartbeat();
  alive->heartbeat();
  EXPECT_TRUE(tracer.scan_liveness(0.0).empty());
  EXPECT_DOUBLE_EQ(tracer.snapshot().value("infilter_trace_threads_stalled"), 0.0);

  // A long threshold keeps a fresh backlog from being flagged.
  EXPECT_TRUE(tracer.scan_liveness(1e9).empty());
}

// Live writers vs. every reader the monitor uses: snapshot scrapes,
// liveness scans, and Chrome-trace drains must all be safe against lanes
// that are emitting (and registering) concurrently. Run under
// INFILTER_SANITIZE=thread this pins the absence of data races.
TEST(Tracer, ConcurrentWritersWithLiveSnapshotsAndExports) {
  TracerConfig config;
  config.ring_capacity = 256;  // small: force overflow accounting too
  config.enabled = true;
  Tracer tracer(config);
  constexpr int kWriters = 3;
  constexpr std::uint64_t kPerWriter = 20000;
  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      auto* lane = tracer.register_thread("w" + std::to_string(w), "worker",
                                          [] { return std::size_t{1}; });
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        lane->set_state(ThreadState::kBusy);
        lane->emit(SpanKind::kProcess, Tracer::now_ns(), 100, i);
        lane->heartbeat();
      }
      lane->retire();
    });
  }
  go.store(true, std::memory_order_release);
  std::vector<TraceEvent> drained_count_probe;
  std::uint64_t json_bytes = 0;
  for (int scrape = 0; scrape < 50; ++scrape) {
    json_bytes += tracer.chrome_trace_json().size();
    (void)tracer.scan_liveness(1.0);
    (void)tracer.snapshot();
  }
  for (auto& t : writers) t.join();
  EXPECT_GT(json_bytes, 0u);
  EXPECT_EQ(tracer.events_emitted() + tracer.events_dropped(),
            kWriters * kPerWriter);
  (void)drained_count_probe;
}

// -- Runtime integration -----------------------------------------------------

netflow::V5Record simple_flow(std::uint32_t salt) {
  netflow::V5Record r;
  r.src_ip = net::IPv4Address{(10u << 24) | (salt << 8)};
  r.dst_ip = *net::IPv4Address::parse("100.64.0.1");
  r.proto = 6;
  r.src_port = 40000;
  r.dst_port = 80;
  r.packets = 10;
  r.bytes = 5000;
  r.first = salt;
  r.last = salt + 10;
  return r;
}

struct ParsedSpan {
  std::string name;
  double ts = 0.0;
  double dur = 0.0;
  std::uint64_t id = 0;
};

/// Minimal extraction of the "X" events from our own Chrome-trace output.
std::vector<ParsedSpan> parse_spans(const std::string& json) {
  std::vector<ParsedSpan> spans;
  std::size_t at = 0;
  while ((at = json.find("\"ph\":\"X\"", at)) != std::string::npos) {
    const auto obj = json.rfind('{', at);
    const auto name_at = json.find("\"name\":\"", obj) + 8;
    const auto ts_at = json.find("\"ts\":", at) + 5;
    const auto dur_at = json.find("\"dur\":", at) + 6;
    const auto id_at = json.find("\"id\":", at) + 5;
    spans.push_back(ParsedSpan{
        json.substr(name_at, json.find('"', name_at) - name_at),
        std::stod(json.substr(ts_at)), std::stod(json.substr(dur_at)),
        std::stoull(json.substr(id_at))});
    at = id_at;
  }
  return spans;
}

// The acceptance-criterion identity: a sampled record's spans tile the
// interval from its first stamp to its verdict, so (a) per journey the
// spans are contiguous, and (b) the sum of all span durations equals the
// e2e histogram's sum. sample_every=1 makes every record a journey.
TEST(TraceRuntime, SpanSumsMatchExportedE2eHistogram) {
  TracerConfig trace_config;
  trace_config.sample_every = 1;
  trace_config.enabled = true;
  Tracer tracer(trace_config);  // declared before the runtime: must outlive it

  runtime::RuntimeConfig config;
  config.shards = 2;
  config.queue_depth = 1024;
  config.engine.mode = core::EngineMode::kBasic;  // no scan stage: kProcess path
  config.tracer = &tracer;
  constexpr std::uint64_t kFlows = 500;
  {
    runtime::ShardedRuntime rt(config);
    for (std::uint32_t i = 0; i < kFlows; ++i) {
      ASSERT_TRUE(rt.submit(simple_flow(i), 9001, i, /*tag=*/i + 1));
    }
    rt.flush();

    const auto snap = tracer.snapshot();
    const auto* e2e = snap.histogram("infilter_e2e_latency_us");
    const auto* shard_wait = snap.histogram("infilter_queue_wait_shard_us");
    ASSERT_NE(e2e, nullptr);
    ASSERT_NE(shard_wait, nullptr);
    EXPECT_EQ(e2e->count, kFlows);
    EXPECT_EQ(shard_wait->count, kFlows);
    EXPECT_EQ(tracer.events_dropped(), 0u);
    EXPECT_EQ(tracer.events_emitted(), 2 * kFlows);  // queue_shard + process

    const auto spans = parse_spans(tracer.chrome_trace_json());
    ASSERT_EQ(spans.size(), 2 * kFlows);
    std::map<std::uint64_t, std::vector<ParsedSpan>> journeys;
    for (const auto& span : spans) journeys[span.id].push_back(span);
    ASSERT_EQ(journeys.size(), kFlows);

    double span_total_us = 0.0;
    for (auto& [id, journey] : journeys) {
      ASSERT_EQ(journey.size(), 2u) << "journey " << id;
      if (journey[0].ts > journey[1].ts) std::swap(journey[0], journey[1]);
      EXPECT_EQ(journey[0].name, "queue_shard");
      EXPECT_EQ(journey[1].name, "process");
      // Tiling: each span starts where the previous one ended (exact in
      // ns; the export prints microseconds with 3 decimals, i.e. exactly).
      EXPECT_NEAR(journey[0].ts + journey[0].dur, journey[1].ts, 0.002);
      span_total_us += journey[0].dur + journey[1].dur;
    }
    // Same stamps feed both sides, so the sums agree to rounding noise.
    EXPECT_NEAR(span_total_us, e2e->sum, 0.01 * static_cast<double>(kFlows));
    rt.shutdown();
  }
  // The tracer outlives the runtime: lanes are retired, not freed, so the
  // post-mortem view still works (no dangling queue probes).
  EXPECT_DOUBLE_EQ(tracer.snapshot().value("infilter_trace_threads"), 0.0);
  EXPECT_EQ(tracer.scan_liveness(0.0).size(), 0u);
}

// Sampling keys on the tag -- the id every span is emitted under -- not on
// the runtime's internal sequence counter. The two differ whenever the
// submitter numbers tags from its own counter (the ingest decode thread
// does), and sampling on the sequence would then double-start journeys
// under a shifted id: the upstream screen passes tag multiples, the
// dispatcher fallback would pass sequence multiples.
TEST(TraceRuntime, SamplingKeysOnTagNotInternalSequence) {
  TracerConfig trace_config;
  trace_config.sample_every = 8;
  trace_config.enabled = true;
  Tracer tracer(trace_config);

  runtime::RuntimeConfig config;
  config.shards = 2;
  config.queue_depth = 1024;
  config.engine.mode = core::EngineMode::kBasic;
  config.tracer = &tracer;
  runtime::ShardedRuntime rt(config);
  // Tags 0..99 while the internal sequence runs 1..100 (the ingest
  // offset): multiples of 8 among the tags are 0, 8, ..., 96.
  constexpr std::uint64_t kFlows = 100;
  for (std::uint32_t i = 0; i < kFlows; ++i) {
    ASSERT_TRUE(rt.submit(simple_flow(i), 9001, i, /*tag=*/i));
  }
  rt.flush();

  const auto snap = tracer.snapshot();
  const auto* e2e = snap.histogram("infilter_e2e_latency_us");
  ASSERT_NE(e2e, nullptr);
  EXPECT_EQ(e2e->count, 13u);  // ceil(100 / 8): tags 0, 8, ..., 96
  const auto spans = parse_spans(tracer.chrome_trace_json());
  EXPECT_EQ(spans.size(), 2 * 13u);
  for (const auto& span : spans) {
    EXPECT_EQ(span.id % 8, 0u) << "journey started under an unsampled id";
  }
  rt.shutdown();
}

// Scan-stage journeys: every flow misses EIA, so every journey crosses the
// suspect rings and ends in scan_nns -- four spans tiling receive..verdict.
TEST(TraceRuntime, ScanStageJourneysTileAcrossAllFourSpans) {
  TracerConfig trace_config;
  trace_config.sample_every = 1;
  trace_config.enabled = true;
  Tracer tracer(trace_config);

  runtime::RuntimeConfig config;
  config.shards = 2;
  config.queue_depth = 256;
  config.engine.mode = core::EngineMode::kEnhanced;
  config.engine.use_scan_analysis = true;
  config.engine.use_nns = false;  // no training needed; scan still runs
  config.tracer = &tracer;
  Tracer* tracer_ptr = &tracer;
  runtime::ShardedRuntime rt(config);
  ASSERT_NE(rt.scan_stage_engine(), nullptr);
  constexpr std::uint64_t kFlows = 200;
  for (std::uint32_t i = 0; i < kFlows; ++i) {
    ASSERT_TRUE(rt.submit(simple_flow(i), 9001, i, /*tag=*/i + 1));
  }
  rt.flush();

  const auto snap = tracer_ptr->snapshot();
  EXPECT_EQ(snap.histogram("infilter_e2e_latency_us")->count, kFlows);
  EXPECT_EQ(snap.histogram("infilter_queue_wait_shard_us")->count, kFlows);
  EXPECT_EQ(snap.histogram("infilter_queue_wait_scan_us")->count, kFlows);
  ASSERT_EQ(tracer_ptr->events_dropped(), 0u);
  // queue_shard + eia on the worker, queue_scan + scan_nns on the stage.
  EXPECT_EQ(tracer_ptr->events_emitted(), 4 * kFlows);

  const auto spans = parse_spans(tracer_ptr->chrome_trace_json());
  std::map<std::uint64_t, std::vector<ParsedSpan>> journeys;
  for (const auto& span : spans) journeys[span.id].push_back(span);
  ASSERT_EQ(journeys.size(), kFlows);
  for (auto& [id, journey] : journeys) {
    ASSERT_EQ(journey.size(), 4u) << "journey " << id;
    std::sort(journey.begin(), journey.end(),
              [](const ParsedSpan& x, const ParsedSpan& y) { return x.ts < y.ts; });
    EXPECT_EQ(journey[0].name, "queue_shard");
    EXPECT_EQ(journey[1].name, "eia");
    EXPECT_EQ(journey[2].name, "queue_scan");
    EXPECT_EQ(journey[3].name, "scan_nns");
    for (int s = 1; s < 4; ++s) {
      EXPECT_NEAR(journey[s - 1].ts + journey[s - 1].dur, journey[s].ts, 0.002)
          << "journey " << id << " span " << s;
    }
  }
  rt.shutdown();
}

// Mid-stream observability against live trace writers: runtime snapshots,
// merged tracer scrapes, liveness scans, and trace exports all while the
// workers are emitting spans. TSan-lane material; the assertions are
// deliberately coarse (the precise accounting is pinned above).
TEST(TraceRuntime, SnapshotsAndScansConcurrentWithTraceWriters) {
  TracerConfig trace_config;
  trace_config.sample_every = 1;
  trace_config.enabled = true;
  Tracer tracer(trace_config);

  runtime::RuntimeConfig config;
  config.shards = 2;
  config.queue_depth = 64;
  config.engine.mode = core::EngineMode::kBasic;
  config.tracer = &tracer;
  runtime::ShardedRuntime rt(config, nullptr,
                             [](const runtime::FlowItem&, const core::Verdict&) {
                               std::this_thread::sleep_for(std::chrono::microseconds(50));
                             });
  constexpr std::uint32_t kFlows = 400;
  std::uint64_t json_bytes = 0;
  for (std::uint32_t i = 0; i < kFlows; ++i) {
    rt.submit(simple_flow(i), 9001, i, i + 1);
    if (i % 40 == 0) {
      const auto merged =
          obs::merge_snapshots({rt.snapshot(), tracer.snapshot()});
      EXPECT_GE(merged.value("infilter_runtime_submitted_total"),
                static_cast<double>(i));
      (void)tracer.scan_liveness(100.0);
      json_bytes += tracer.chrome_trace_json().size();
    }
  }
  rt.flush();
  const auto merged = obs::merge_snapshots({rt.snapshot(), tracer.snapshot()});
  EXPECT_DOUBLE_EQ(merged.value("infilter_flows_total"),
                   static_cast<double>(kFlows));
  EXPECT_GT(merged.value("infilter_trace_events_total"), 0.0);
  EXPECT_GT(json_bytes, 0u);
  rt.shutdown();
}

// Tracing compiled in but *disabled* must leave no trace: no span events,
// no journey observations -- the disabled path is one branch per hop.
// (The "costs nothing" half is pinned by bench/ingest_throughput.)
TEST(TraceRuntime, DisabledTracerEmitsNoSpansButKeepsLiveness) {
  Tracer tracer;  // enabled = false
  runtime::RuntimeConfig config;
  config.shards = 2;
  config.engine.mode = core::EngineMode::kBasic;
  config.tracer = &tracer;
  runtime::ShardedRuntime rt(config);
  for (std::uint32_t i = 0; i < 300; ++i) {
    ASSERT_TRUE(rt.submit(simple_flow(i), 9001, i, i + 1));
  }
  rt.flush();
  EXPECT_EQ(tracer.events_emitted(), 0u);
  const auto snap = tracer.snapshot();
  EXPECT_EQ(snap.histogram("infilter_e2e_latency_us")->count, 0u);
  EXPECT_EQ(snap.histogram("infilter_queue_wait_shard_us")->count, 0u);
  // Liveness is always on: the lanes exist, report roles, and heartbeat.
  EXPECT_DOUBLE_EQ(snap.value("infilter_pipeline_threads_worker"), 2.0);
  EXPECT_DOUBLE_EQ(snap.value("infilter_pipeline_threads_dispatch"), 1.0);
  EXPECT_TRUE(tracer.scan_liveness(0.0).empty());
  rt.shutdown();
}

}  // namespace
}  // namespace infilter

// Tests for the Table 2 / Table 3 allocation machinery
// (dagflow/allocation.h), including exact reproduction of the paper's
// published allocations.

#include "dagflow/allocation.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <tuple>

namespace infilter::dagflow {
namespace {

std::string blocks_notation(const std::vector<net::SubBlock>& blocks) {
  std::string out;
  for (const auto& b : blocks) {
    if (!out.empty()) out += ' ';
    out += b.notation();
  }
  return out;
}

TEST(EiaRange, ReproducesTableThree) {
  // Table 3: Peer AS1 <- 1a-13d, AS2 <- 13e-25h, ..., AS10 <- 113e-125h.
  const char* expected[] = {"1a-13d",    "13e-25h",   "26a-38d",  "38e-50h",
                            "51a-63d",   "63e-75h",   "76a-88d",  "88e-100h",
                            "101a-113d", "113e-125h"};
  for (int s = 0; s < 10; ++s) {
    EXPECT_EQ(eia_range(s).notation(), expected[s]) << "source " << s;
  }
}

TEST(EiaRange, RangesAreDisjointAndCoverFirstThousand) {
  std::set<int> seen;
  for (int s = 0; s < 10; ++s) {
    for (const auto& block : eia_range(s).expand()) {
      EXPECT_TRUE(seen.insert(block.index()).second);
    }
  }
  EXPECT_EQ(seen.size(), 1000u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 999);
}

TEST(MakeAllocation, ReproducesTableTwoAllocationOne) {
  // Table 2, Allocation 1 (our index 0) with 2% route change.
  const auto alloc = make_allocation(10, 100, 2, 0);
  const char* normal[] = {"1a-13b",    "13e-25f",   "26a-38b",  "38e-50f",
                          "51a-63b",   "63e-75f",   "76a-88b",  "88e-100f",
                          "101a-113b", "113e-125f"};
  const char* change[] = {"113d 125g", "125h 13c", "13d 25g",  "25h 38c",
                          "38d 50g",   "50h 63c",  "63d 75g",  "75h 88c",
                          "88d 100g",  "100h 113c"};
  ASSERT_EQ(alloc.size(), 10u);
  for (int s = 0; s < 10; ++s) {
    const auto& a = alloc[static_cast<std::size_t>(s)];
    ASSERT_EQ(a.normal_set.size(), 98u);
    EXPECT_EQ(a.normal_set.front().notation() + "-" + a.normal_set.back().notation(),
              normal[s])
        << "source " << s;
    // Change sets compare as sets (the paper lists them unordered).
    std::set<std::string> have;
    for (const auto& b : a.change_set) have.insert(b.notation());
    std::set<std::string> want;
    std::string text = change[s];
    want.insert(text.substr(0, text.find(' ')));
    want.insert(text.substr(text.find(' ') + 1));
    EXPECT_EQ(have, want) << "source " << s << ": " << blocks_notation(a.change_set);
  }
}

TEST(MakeAllocation, ReproducesTableTwoAllocationTwo) {
  const auto alloc = make_allocation(10, 100, 2, 1);
  // Table 2, Allocation 2: each source receives its predecessor's
  // allocation-1 change set.
  const char* change[] = {"100h 113c", "113d 125g", "13c 125h", "13d 25g",
                          "25h 38c",   "38d 50g",   "50h 63c",  "63d 75g",
                          "75h 88c",   "88d 100g"};
  for (int s = 0; s < 10; ++s) {
    std::set<std::string> have;
    for (const auto& b : alloc[static_cast<std::size_t>(s)].change_set) {
      have.insert(b.notation());
    }
    std::set<std::string> want;
    std::string text = change[s];
    want.insert(text.substr(0, text.find(' ')));
    want.insert(text.substr(text.find(' ') + 1));
    EXPECT_EQ(have, want) << "source " << s;
  }
}

class AllocationSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};  // (change, index)

TEST_P(AllocationSweep, StructuralInvariants) {
  const auto [change_blocks, index] = GetParam();
  const auto alloc = make_allocation(10, 100, change_blocks, index);
  ASSERT_EQ(alloc.size(), 10u);

  std::set<int> used;
  for (int s = 0; s < 10; ++s) {
    const auto& a = alloc[static_cast<std::size_t>(s)];
    EXPECT_EQ(static_cast<int>(a.normal_set.size()), 100 - change_blocks);
    EXPECT_EQ(static_cast<int>(a.change_set.size()), change_blocks);
    // Normal set is a prefix of the source's own EIA range.
    for (const auto& b : a.normal_set) {
      EXPECT_TRUE(a.eia_range.contains(b));
      EXPECT_TRUE(used.insert(b.index()).second);
    }
    // Change blocks come from other sources' ranges (no self-donation).
    for (const auto& b : a.change_set) {
      EXPECT_FALSE(a.eia_range.contains(b))
          << "source " << s << " received own block " << b.notation();
      EXPECT_TRUE(used.insert(b.index()).second)
          << "block " << b.notation() << " allocated twice";
    }
  }
  // Every one of the 1000 blocks is used exactly once per allocation.
  EXPECT_EQ(used.size(), 1000u);
}

INSTANTIATE_TEST_SUITE_P(ChangeLevelsAndIndices, AllocationSweep,
                         ::testing::Combine(::testing::Values(1, 2, 4, 8),
                                            ::testing::Values(0, 1, 2, 3)));

TEST(MakeAllocation, ZeroChangeMatchesTableThree) {
  const auto alloc = make_allocation(10, 100, 0, 0);
  for (int s = 0; s < 10; ++s) {
    const auto& a = alloc[static_cast<std::size_t>(s)];
    EXPECT_EQ(a.normal_set.size(), 100u);
    EXPECT_TRUE(a.change_set.empty());
    EXPECT_EQ(a.eia_range, eia_range(s));
  }
}

TEST(MakeAllocation, SuccessiveAllocationsRotateChangeSets) {
  const auto a0 = make_allocation(10, 100, 2, 0);
  const auto a1 = make_allocation(10, 100, 2, 1);
  // Allocation k+1 gives source s+1 what allocation k gave source s.
  for (int s = 0; s < 10; ++s) {
    std::set<int> from_a0;
    for (const auto& b : a0[static_cast<std::size_t>(s)].change_set) {
      from_a0.insert(b.index());
    }
    std::set<int> from_a1;
    for (const auto& b : a1[static_cast<std::size_t>((s + 1) % 10)].change_set) {
      from_a1.insert(b.index());
    }
    EXPECT_EQ(from_a0, from_a1) << "source " << s;
  }
}

}  // namespace
}  // namespace infilter::dagflow

// Tests for the pluggable EIA membership backends (core/eia_backend.h):
// the parse syntax, the Bloom no-false-negative guarantee, ingress
// salting, per-ingress filter arrays, Azzana-style aging, counting-Bloom
// unlearning, and the bank isolation the sharded runtime's verdict
// contract rests on.

#include "core/eia_backend.h"

#include <gtest/gtest.h>

#include "core/eia.h"
#include "util/rng.h"

namespace infilter::core {
namespace {

net::IPv4Address ip(const char* text) { return *net::IPv4Address::parse(text); }
net::Prefix prefix(const char* text) { return *net::Prefix::parse(text); }

net::Prefix slash24(std::uint32_t key24) {
  return net::Prefix{net::IPv4Address{key24}, 24};
}

/// The bank hash, re-derived the way the backend (and the runtime's
/// shard_of) computes it.
std::size_t bank_of(std::uint32_t key24) {
  return static_cast<std::size_t>(util::SplitMix64{key24}.next() % kBloomBanks);
}

TEST(EiaBackendParse, Exact) {
  const auto config = parse_eia_backend("exact");
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->type, EiaBackendType::kExact);
  EXPECT_FALSE(parse_eia_backend("exact:123").has_value());
}

TEST(EiaBackendParse, BloomDefaults) {
  const auto config = parse_eia_backend("bloom");
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->type, EiaBackendType::kBloom);
  EXPECT_EQ(config->bits, std::size_t{1} << 23);
  EXPECT_EQ(config->hashes, 4);
  EXPECT_EQ(config->subfilters, 1);
}

TEST(EiaBackendParse, BloomFullSpec) {
  const auto config = parse_eia_backend("bloom:65536,6,4,1000");
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->bits, 65536u);
  EXPECT_EQ(config->hashes, 6);
  EXPECT_EQ(config->subfilters, 4);
  EXPECT_EQ(config->rotate_every, 1000u);
}

TEST(EiaBackendParse, CountingBloom) {
  const auto config = parse_eia_backend("cbloom:131072,3");
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->type, EiaBackendType::kCountingBloom);
  EXPECT_EQ(config->bits, 131072u);
  EXPECT_EQ(config->hashes, 3);
}

TEST(EiaBackendParse, Rejections) {
  EXPECT_FALSE(parse_eia_backend("ripe").has_value());
  EXPECT_FALSE(parse_eia_backend("bloom:12").has_value());       // bits < 64
  EXPECT_FALSE(parse_eia_backend("bloom:65536,0").has_value());  // k < 1
  EXPECT_FALSE(parse_eia_backend("bloom:65536,17").has_value());
  EXPECT_FALSE(parse_eia_backend("bloom:65536,4,9").has_value());
  EXPECT_FALSE(parse_eia_backend("bloom:65536,4,1,100").has_value());  // aging wants R>=2
  EXPECT_FALSE(parse_eia_backend("bloom:65536,4,2,100,9").has_value());
  EXPECT_FALSE(parse_eia_backend("bloom:banana").has_value());
}

// The CLIs' preload-time saturation warning keys off this estimate: it
// must be 0 on exact, track 1 - e^{-kn/m}, and account for the sub-filter
// split (aging halves each live filter's budget at R=2).
TEST(EiaBackendParse, PredictedFillRatio) {
  EXPECT_DOUBLE_EQ(predicted_fill_ratio(EiaBackendConfig{}, 1 << 20), 0.0);

  EiaBackendConfig bloom;
  bloom.type = EiaBackendType::kBloom;
  bloom.bits = 1 << 20;
  bloom.hashes = 4;
  EXPECT_DOUBLE_EQ(predicted_fill_ratio(bloom, 0), 0.0);
  const double quarter = predicted_fill_ratio(bloom, 1 << 18);  // n = m/4
  EXPECT_NEAR(quarter, 1.0 - std::exp(-1.0), 1e-12);
  EXPECT_GT(predicted_fill_ratio(bloom, 1 << 22), 0.99);  // n = 4m saturates

  auto aged = bloom;
  aged.subfilters = 2;
  EXPECT_GT(predicted_fill_ratio(aged, 1 << 18), quarter);
}

TEST(EiaBackend, BloomHasNoFalseNegatives) {
  EiaBackendConfig config;
  config.type = EiaBackendType::kBloom;
  config.bits = 1 << 21;
  auto backend = make_eia_backend(config);
  util::SplitMix64 rng{7};
  std::vector<std::uint32_t> keys;
  for (int i = 0; i < 5000; ++i) {
    keys.push_back(static_cast<std::uint32_t>(rng.next()) & 0xFFFFFF00u);
    backend->add(9001, slash24(keys.back()));
  }
  for (const auto key : keys) {
    EXPECT_TRUE(backend->contains(9001, net::IPv4Address{key + 7}));
  }
  EXPECT_EQ(backend->total_ranges(), 5000u);
  EXPECT_GT(backend->fill_ratio(), 0.0);
  EXPECT_LT(backend->fill_ratio(), 0.5);
}

TEST(EiaBackend, BloomFalsePositivesWithinBudget) {
  // 2^21 bits / 5000 keys at k=4 puts the classic Bloom bound well under
  // 1%; allow 2% for the banked layout's rounding.
  EiaBackendConfig config;
  config.type = EiaBackendType::kBloom;
  config.bits = 1 << 21;
  auto backend = make_eia_backend(config);
  util::SplitMix64 rng{7};
  for (int i = 0; i < 5000; ++i) {
    backend->add(9001,
                 slash24(static_cast<std::uint32_t>(rng.next()) & 0xFFFFFF00u));
  }
  int false_positives = 0;
  const int probes = 20000;
  util::SplitMix64 probe_rng{999};
  for (int i = 0; i < probes; ++i) {
    // Disjoint probe space: learned keys above were unconstrained, so
    // restrict probes to a /8 the insert stream cannot hit... instead
    // just resample; collisions with the 5000 learned keys are ~2^-12.
    const auto key = static_cast<std::uint32_t>(probe_rng.next()) & 0xFFFFFF00u;
    false_positives += backend->contains(9001, net::IPv4Address{key}) ? 1 : 0;
  }
  EXPECT_LT(false_positives, probes / 50);
}

TEST(EiaBackend, SharedModeSaltsByIngress) {
  // One shared array, but each ingress probes with its own salt: keys
  // learned at 9001 read as absent at 9002 (up to the FP budget).
  EiaBackendConfig config;
  config.type = EiaBackendType::kBloom;
  config.bits = 1 << 20;
  auto backend = make_eia_backend(config);
  backend->declare_ingress(9002);
  util::SplitMix64 rng{11};
  std::vector<std::uint32_t> keys;
  for (int i = 0; i < 2000; ++i) {
    keys.push_back(static_cast<std::uint32_t>(rng.next()) & 0xFFFFFF00u);
    backend->add(9001, slash24(keys.back()));
  }
  int cross_hits = 0;
  for (const auto key : keys) {
    EXPECT_TRUE(backend->contains(9001, net::IPv4Address{key}));
    cross_hits += backend->contains(9002, net::IPv4Address{key}) ? 1 : 0;
  }
  EXPECT_LT(cross_hits, 2000 / 50);
  // expected_ingress names the learning ingress, not the declared-empty
  // lower one, for (almost) every learned key.
  int first_match_9001 = 0;
  for (const auto key : keys) {
    const auto home = backend->expected_ingress(net::IPv4Address{key});
    first_match_9001 += (home == std::optional<IngressId>{9001}) ? 1 : 0;
  }
  EXPECT_GT(first_match_9001, 2000 - 2000 / 50);
}

TEST(EiaBackend, PerIngressMidListDeclareKeepsSlotsAligned) {
  // Filter arrays are addressed by sorted ingress position; declaring a
  // mid-list ingress later must not shift existing ingresses' bits.
  EiaBackendConfig config;
  config.type = EiaBackendType::kBloom;
  config.bits = 1 << 18;
  config.per_ingress = true;
  auto backend = make_eia_backend(config);
  backend->add(9001, prefix("10.1.0.0/24"));
  backend->add(9003, prefix("10.3.0.0/24"));
  EXPECT_TRUE(backend->contains(9001, ip("10.1.0.5")));
  EXPECT_TRUE(backend->contains(9003, ip("10.3.0.5")));
  backend->add(9002, prefix("10.2.0.0/24"));  // inserts between them
  EXPECT_TRUE(backend->contains(9001, ip("10.1.0.5")));
  EXPECT_TRUE(backend->contains(9002, ip("10.2.0.5")));
  EXPECT_TRUE(backend->contains(9003, ip("10.3.0.5")));
  EXPECT_FALSE(backend->contains(9002, ip("10.1.0.5")));
  EXPECT_FALSE(backend->contains(9001, ip("10.3.0.5")));
  EXPECT_EQ(backend->ingress_count(), 3u);
}

TEST(EiaBackend, WidePrefixExpandsToSlash24s) {
  EiaBackendConfig config;
  config.type = EiaBackendType::kBloom;
  config.bits = 1 << 18;
  auto backend = make_eia_backend(config);
  backend->add(9001, prefix("20.0.0.0/22"));  // 4 /24s
  EXPECT_EQ(backend->total_ranges(), 4u);
  EXPECT_TRUE(backend->contains(9001, ip("20.0.0.1")));
  EXPECT_TRUE(backend->contains(9001, ip("20.0.3.255")));
  // A /32 widens to its /24.
  backend->add(9001, prefix("30.0.0.7/32"));
  EXPECT_TRUE(backend->contains(9001, ip("30.0.0.200")));
}

TEST(EiaBackend, AgingExpiresIdleKeys) {
  // R=3 sub-filters rotating every 8 same-bank inserts: an idle key is
  // erased after at most 3 full rotations of its bank.
  EiaBackendConfig config;
  config.type = EiaBackendType::kBloom;
  config.bits = 1 << 18;
  config.subfilters = 3;
  config.rotate_every = 8;
  auto backend = make_eia_backend(config);
  const std::uint32_t idle = 0x0A000000u;  // 10.0.0.0/24
  backend->add(9001, slash24(idle));
  ASSERT_TRUE(backend->contains(9001, net::IPv4Address{idle}));

  // Flood the SAME bank (rotation schedules are bank-local) until the
  // idle key's sub-filter has been erased.
  auto* base = static_cast<BankedBloomBase*>(backend.get());
  std::uint32_t key = idle;
  int same_bank_inserts = 0;
  while (same_bank_inserts < 8 * 4) {
    key += 0x100u;
    if (bank_of(key) != bank_of(idle)) continue;
    backend->add(9001, slash24(key));
    ++same_bank_inserts;
  }
  EXPECT_GE(base->rotations(), 3u);
  EXPECT_FALSE(backend->contains(9001, net::IPv4Address{idle}));
  // A refreshed (re-inserted) key would have survived: the most recent
  // same-bank keys are still present.
  EXPECT_TRUE(backend->contains(9001, net::IPv4Address{key}));
}

TEST(EiaBackend, AgingIsBankLocal) {
  // Inserts into OTHER banks never rotate this bank: the idle key
  // survives arbitrary cross-bank traffic.
  EiaBackendConfig config;
  config.type = EiaBackendType::kBloom;
  config.bits = 1 << 18;
  config.subfilters = 2;
  config.rotate_every = 4;
  auto backend = make_eia_backend(config);
  const std::uint32_t idle = 0x0A000000u;
  backend->add(9001, slash24(idle));
  std::uint32_t key = idle;
  for (int inserted = 0; inserted < 200;) {
    key += 0x100u;
    if (bank_of(key) == bank_of(idle)) continue;
    backend->add(9001, slash24(key));
    ++inserted;
  }
  EXPECT_TRUE(backend->contains(9001, net::IPv4Address{idle}));
}

TEST(EiaBackend, CountingBloomUnlearns) {
  EiaBackendConfig config;
  config.type = EiaBackendType::kCountingBloom;
  config.bits = 1 << 18;
  auto backend = make_eia_backend(config);
  EXPECT_TRUE(backend->supports_unlearn());
  backend->add(9001, prefix("10.0.0.0/24"));
  backend->add(9001, prefix("10.0.1.0/24"));
  EXPECT_TRUE(backend->contains(9001, ip("10.0.0.1")));
  backend->unlearn(9001, prefix("10.0.0.0/24"));
  EXPECT_FALSE(backend->contains(9001, ip("10.0.0.1")));
  EXPECT_TRUE(backend->contains(9001, ip("10.0.1.1")));
}

TEST(EiaBackend, CountingBloomSaturatedCountersArePinned) {
  EiaBackendConfig config;
  config.type = EiaBackendType::kCountingBloom;
  config.bits = 1 << 16;
  auto backend = make_eia_backend(config);
  for (int i = 0; i < 300; ++i) backend->add(9001, prefix("10.0.0.0/24"));
  // Every one of the key's counters saturated at 255; unlearning cannot
  // (and by design must not) drop a pinned position.
  for (int i = 0; i < 300; ++i) backend->unlearn(9001, prefix("10.0.0.0/24"));
  EXPECT_TRUE(backend->contains(9001, ip("10.0.0.1")));
}

TEST(EiaBackend, BloomDoesNotSupportUnlearn) {
  EiaBackendConfig config;
  config.type = EiaBackendType::kBloom;
  config.bits = 1 << 16;
  auto backend = make_eia_backend(config);
  EXPECT_FALSE(backend->supports_unlearn());
  backend->add(9001, prefix("10.0.0.0/24"));
  backend->unlearn(9001, prefix("10.0.0.0/24"));  // no-op
  EXPECT_TRUE(backend->contains(9001, ip("10.0.0.1")));
}

TEST(EiaBackend, BankIsolationPinsVerdictsAcrossForeignTraffic) {
  // The sharded runtime's verdict contract rests on this: a probe's
  // answer is a function of its own bank's inserts only, so co-sharded
  // keys (same bank) see identical bit patterns no matter what traffic
  // other shards carried. Backend A learns only same-bank keys; backend
  // B learns those plus heavy foreign-bank traffic (enough to rotate the
  // foreign banks). Every same-bank probe must answer identically --
  // false positives included.
  EiaBackendConfig config;
  config.type = EiaBackendType::kBloom;
  config.bits = 1 << 16;  // small: false positives likely, and they must match
  config.hashes = 2;
  config.subfilters = 2;
  config.rotate_every = 16;
  auto a = make_eia_backend(config);
  auto b = make_eia_backend(config);

  const std::size_t bank = bank_of(0x0A000000u);
  std::vector<std::uint32_t> same_bank;
  for (std::uint32_t key = 0x0A000000u; same_bank.size() < 400; key += 0x100u) {
    if (bank_of(key) == bank) same_bank.push_back(key);
  }
  for (std::size_t i = 0; i < 60; ++i) {
    a->add(9001, slash24(same_bank[i]));
    b->add(9001, slash24(same_bank[i]));
  }
  util::SplitMix64 rng{31};
  for (int foreign = 0; foreign < 5000;) {
    const auto key = static_cast<std::uint32_t>(rng.next()) & 0xFFFFFF00u;
    if (bank_of(key) == bank) continue;
    b->add(9001, slash24(key));
    ++foreign;
  }
  for (const auto key : same_bank) {
    EXPECT_EQ(a->contains(9001, net::IPv4Address{key}),
              b->contains(9001, net::IPv4Address{key}))
        << "key " << net::IPv4Address{key}.to_string();
  }
}

TEST(EiaBackend, SameSeedSameVerdicts) {
  EiaBackendConfig config;
  config.type = EiaBackendType::kBloom;
  config.bits = 1 << 16;
  config.hashes = 2;
  auto a = make_eia_backend(config);
  auto b = make_eia_backend(config);
  util::SplitMix64 rng{5};
  for (int i = 0; i < 3000; ++i) {
    const auto key = static_cast<std::uint32_t>(rng.next()) & 0xFFFFFF00u;
    a->add(9001, slash24(key));
    b->add(9001, slash24(key));
  }
  util::SplitMix64 probe_rng{77};
  for (int i = 0; i < 5000; ++i) {
    const net::IPv4Address address{static_cast<std::uint32_t>(probe_rng.next())};
    ASSERT_EQ(a->contains(9001, address), b->contains(9001, address));
  }
  // A different seed shapes different bit patterns (over many probes the
  // false-positive sets differ).
  config.hash_seed ^= 0xDEADBEEFULL;
  auto c = make_eia_backend(config);
  util::SplitMix64 replay{5};
  for (int i = 0; i < 3000; ++i) {
    c->add(9001,
           slash24(static_cast<std::uint32_t>(replay.next()) & 0xFFFFFF00u));
  }
  int differs = 0;
  util::SplitMix64 probe2{77};
  for (int i = 0; i < 5000; ++i) {
    const net::IPv4Address address{static_cast<std::uint32_t>(probe2.next())};
    differs += a->contains(9001, address) != c->contains(9001, address) ? 1 : 0;
  }
  EXPECT_GT(differs, 0);
}

TEST(EiaBackend, TableLearnsThroughBloomBackend) {
  // The auto-learning machinery is backend-agnostic: an EiaTable over the
  // Bloom backend learns a /24 after learn_threshold mismatches.
  EiaTableConfig config;
  config.learn_threshold = 3;
  config.backend.type = EiaBackendType::kBloom;
  config.backend.bits = 1 << 18;
  EiaTable table(config);
  table.add_expected(9001, prefix("3.0.0.0/11"));
  const auto newcomer = ip("77.1.2.3");
  EXPECT_FALSE(table.observe_mismatch(9001, newcomer));
  EXPECT_FALSE(table.observe_mismatch(9001, newcomer));
  EXPECT_TRUE(table.observe_mismatch(9001, newcomer));
  EXPECT_TRUE(table.is_expected(9001, newcomer));
  EXPECT_TRUE(table.is_expected(9001, ip("77.1.2.250")));
  EXPECT_EQ(table.set_for(9001), nullptr);  // no interval representation
  EXPECT_GT(table.memory_bytes(), 0u);
  EXPECT_GT(table.fill_ratio(), 0.0);
}

TEST(EiaBackend, MemoryBytesRespectsBudget) {
  EiaBackendConfig config;
  config.type = EiaBackendType::kBloom;
  config.bits = 1 << 23;
  auto backend = make_eia_backend(config);
  backend->declare_ingress(9001);
  // One shared array: bits/8 plus bank bookkeeping, within 2x of budget.
  EXPECT_GE(backend->memory_bytes(), (std::size_t{1} << 23) / 8);
  EXPECT_LE(backend->memory_bytes(), 2 * ((std::size_t{1} << 23) / 8) + 16384);
}

}  // namespace
}  // namespace infilter::core

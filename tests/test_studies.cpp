// Tests for the Section 3 validation studies (routing/studies.h).

#include "routing/studies.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace infilter::routing {
namespace {

TopologyConfig small_topology() {
  TopologyConfig c;
  c.tier1_count = 3;
  c.tier2_count = 12;
  c.stub_count = 45;
  return c;
}

TEST(AggregatedEqual, SameSlash24Matches) {
  const Hop a{net::IPv4Address{160, 0, 0, 1}, "r1.as7001.net", 1};
  const Hop b{net::IPv4Address{160, 0, 0, 9}, "r2.as7001.net", 1};
  EXPECT_TRUE(aggregated_equal(a, b));  // /24 match wins despite FQDN change
}

TEST(AggregatedEqual, DifferentSubnetSameFqdnMatches) {
  const Hop a{net::IPv4Address{160, 0, 0, 1}, "r1.as7001.net", 1};
  const Hop b{net::IPv4Address{160, 0, 1, 1}, "r1.as7001.net", 1};
  EXPECT_TRUE(aggregated_equal(a, b));
}

TEST(AggregatedEqual, DifferentSubnetAndFqdnDiffers) {
  const Hop a{net::IPv4Address{160, 0, 0, 1}, "r1.as7001.net", 1};
  const Hop b{net::IPv4Address{160, 0, 1, 1}, "r3.as7002.net", 2};
  EXPECT_FALSE(aggregated_equal(a, b));
}

TEST(PickSpreadTargets, CountAndUniqueness) {
  const auto topo = AsTopology::generate(small_topology(), 1);
  const auto targets = pick_spread_targets(topo, 20, 2);
  EXPECT_EQ(targets.size(), 20u);
  std::set<AsId> unique(targets.begin(), targets.end());
  // Degree-sliced sampling can repeat an AS only if slices collide; with
  // 60 ASes and 20 slices they never do.
  EXPECT_EQ(unique.size(), targets.size());
}

TEST(PickSpreadTargets, SpansDegreeRange) {
  const auto topo = AsTopology::generate(small_topology(), 3);
  const auto targets = pick_spread_targets(topo, 10, 4);
  int min_degree = 1 << 30;
  int max_degree = 0;
  for (const auto target : targets) {
    min_degree = std::min(min_degree, topo.degree(target));
    max_degree = std::max(max_degree, topo.degree(target));
  }
  EXPECT_LT(min_degree, max_degree);
}

TEST(PickLookingGlassSites, DisjointFromTargets) {
  const auto topo = AsTopology::generate(small_topology(), 5);
  const auto targets = pick_spread_targets(topo, 10, 6);
  const auto sites = pick_looking_glass_sites(topo, 12, targets, 7);
  EXPECT_EQ(sites.size(), 12u);
  for (const auto site : sites) {
    for (const auto target : targets) EXPECT_NE(site, target);
  }
  std::set<AsId> unique(sites.begin(), sites.end());
  EXPECT_EQ(unique.size(), sites.size());
}

TracerouteStudyConfig small_study() {
  TracerouteStudyConfig c;
  c.looking_glass_sites = 6;
  c.target_count = 5;
  c.readings = 12;
  c.completion_probability = 1.0;
  c.topology = small_topology();
  c.seed = 11;
  return c;
}

TEST(TracerouteStudy, SampleAccountingAddsUp) {
  const auto result = run_traceroute_study(small_study());
  // With completion probability 1, every (site, target) pair yields one
  // sample per reading and transitions = samples - pairs.
  EXPECT_EQ(result.samples, 6 * 5 * 12);
  EXPECT_EQ(result.transitions, result.samples - 6 * 5);
  EXPECT_LE(result.aggregated_changes, result.raw_changes);
  EXPECT_LE(result.raw_changes, result.transitions);
}

TEST(TracerouteStudy, CompletionProbabilityReducesSamples) {
  auto config = small_study();
  config.completion_probability = 0.5;
  const auto result = run_traceroute_study(config);
  EXPECT_LT(result.samples, 6 * 5 * 12);
  EXPECT_GT(result.samples, 0);
}

TEST(TracerouteStudy, QuietChurnMeansNoChanges) {
  auto config = small_study();
  config.churn = ChurnRates{0, 0, 0, 0};
  const auto result = run_traceroute_study(config);
  EXPECT_EQ(result.raw_changes, 0);
  EXPECT_EQ(result.aggregated_changes, 0);
  EXPECT_EQ(result.full_path_changes, 0);
}

TEST(TracerouteStudy, EcmpOnlyChurnIsSmoothedByAggregation) {
  auto config = small_study();
  config.topology.parallel_link_fraction = 1.0;
  config.topology.cross_subnet_fraction = 0.0;  // same-/24 circuits only
  config.churn = ChurnRates{0, 0, 0, 10.0};     // heavy ECMP rehash only
  const auto result = run_traceroute_study(config);
  EXPECT_GT(result.raw_changes, 0);
  // Same-/24 circuit flips are invisible after /24 smoothing, and no BGP
  // churn exists, so aggregated changes stay at zero.
  EXPECT_EQ(result.aggregated_changes, 0);
}

TEST(TracerouteStudy, InteriorChurnShowsInFullPathNotLastHop) {
  auto config = small_study();
  config.topology.parallel_link_fraction = 0.0;
  config.churn = ChurnRates{20.0, 0, 0, 0};  // IGP churn only
  const auto result = run_traceroute_study(config);
  // The paper's core contrast: full paths are volatile [LABO][VPAX] while
  // the last AS hop is comparatively stable.
  EXPECT_GT(result.full_path_changes, result.aggregated_changes);
}

TEST(TracerouteStudy, DeterministicForSeed) {
  const auto a = run_traceroute_study(small_study());
  const auto b = run_traceroute_study(small_study());
  EXPECT_EQ(a.samples, b.samples);
  EXPECT_EQ(a.raw_changes, b.raw_changes);
  EXPECT_EQ(a.aggregated_changes, b.aggregated_changes);
}

TEST(StabilityProfile, EdgesMoreStableThanMiddle) {
  // Figure 1's shape: the first and last tenth of the path are more
  // stable than the mid-path minimum.
  auto config = small_study();
  config.readings = 30;
  config.churn.igp_events_per_as_hour = 2.0;  // pronounced interior churn
  const auto profile = run_stability_profile(config);
  double mid_min = 1.0;
  for (int b = 3; b <= 6; ++b) {
    mid_min = std::min(mid_min, 1.0 - profile.change_rate[static_cast<std::size_t>(b)]);
  }
  EXPECT_GT(1.0 - profile.change_rate[0], mid_min);
  EXPECT_GT(1.0 - profile.change_rate[StabilityProfile::kBuckets - 1], mid_min);
}

TEST(StabilityProfile, SamplesCoverEveryBucket) {
  const auto profile = run_stability_profile(small_study());
  for (const auto samples : profile.samples) EXPECT_GT(samples, 0u);
  for (const auto rate : profile.change_rate) {
    EXPECT_GE(rate, 0.0);
    EXPECT_LE(rate, 1.0);
  }
}

TEST(StabilityProfile, QuietChurnIsPerfectlyStable) {
  auto config = small_study();
  config.churn = ChurnRates{0, 0, 0, 0};
  const auto profile = run_stability_profile(config);
  for (const auto rate : profile.change_rate) EXPECT_EQ(rate, 0.0);
}

BgpStudyConfig small_bgp() {
  BgpStudyConfig c;
  c.target_count = 6;
  c.snapshots = 20;
  c.topology = small_topology();
  c.seed = 13;
  return c;
}

TEST(BgpStudy, ReportsOneSeriesPerTarget) {
  const auto result = run_bgp_study(small_bgp());
  EXPECT_EQ(result.targets.size(), 6u);
  for (const auto& series : result.targets) {
    EXPECT_GE(series.peer_as_count, 1);
    EXPECT_GE(series.avg_fractional_change, 0.0);
    EXPECT_LE(series.avg_fractional_change, 1.0);
    EXPECT_GE(series.max_fractional_change, series.avg_fractional_change);
  }
}

TEST(BgpStudy, NoChurnMeansNoChange) {
  auto config = small_bgp();
  config.churn.link_fail_per_hour = 0;
  const auto result = run_bgp_study(config);
  EXPECT_EQ(result.overall_avg_change, 0.0);
  EXPECT_EQ(result.overall_max_change, 0.0);
}

TEST(BgpStudy, ChurnProducesBoundedChange) {
  auto config = small_bgp();
  config.churn.link_fail_per_hour = 0.002;
  config.churn.link_repair_per_hour = 0.25;
  const auto result = run_bgp_study(config);
  EXPECT_GE(result.overall_avg_change, 0.0);
  EXPECT_LE(result.overall_avg_change, 0.5);
  EXPECT_LE(result.overall_max_change, 1.0);
}

TEST(BgpStudy, DeterministicForSeed) {
  const auto a = run_bgp_study(small_bgp());
  const auto b = run_bgp_study(small_bgp());
  ASSERT_EQ(a.targets.size(), b.targets.size());
  for (std::size_t i = 0; i < a.targets.size(); ++i) {
    EXPECT_EQ(a.targets[i].target, b.targets[i].target);
    EXPECT_DOUBLE_EQ(a.targets[i].avg_fractional_change,
                     b.targets[i].avg_fractional_change);
  }
}

}  // namespace
}  // namespace infilter::routing

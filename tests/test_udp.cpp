// Tests for the loopback UDP export path (flowtools/udp.h).

#include "flowtools/udp.h"

#include <gtest/gtest.h>

#include "dagflow/dagflow.h"
#include "traffic/normal.h"

namespace infilter::flowtools {
namespace {

TEST(UdpReceiver, EphemeralBindReportsPort) {
  auto receiver = UdpReceiver::bind(0);
  ASSERT_TRUE(receiver.has_value()) << receiver.error().message;
  EXPECT_GT(receiver->port(), 0);
}

TEST(UdpReceiver, ReceiveWithoutTrafficIsEmpty) {
  auto receiver = UdpReceiver::bind(0);
  ASSERT_TRUE(receiver.has_value());
  const auto datagram = receiver->receive();
  ASSERT_TRUE(datagram.has_value());
  EXPECT_TRUE(datagram->empty());
}

TEST(UdpPath, DatagramRoundTrip) {
  auto receiver = UdpReceiver::bind(0);
  ASSERT_TRUE(receiver.has_value());
  auto sender = UdpSender::create();
  ASSERT_TRUE(sender.has_value());

  const std::vector<std::uint8_t> payload{1, 2, 3, 4, 5};
  ASSERT_TRUE(sender->send(receiver->port(), payload).has_value());

  // Loopback delivery is effectively immediate, but poll briefly anyway.
  std::vector<std::uint8_t> got;
  for (int i = 0; i < 100 && got.empty(); ++i) {
    auto datagram = receiver->receive();
    ASSERT_TRUE(datagram.has_value());
    got = std::move(*datagram);
  }
  EXPECT_EQ(got, payload);
}

TEST(LiveCollector, CapturesMultiplexedExports) {
  // Two emulated border routers on distinct ports, one collector.
  auto collector = LiveCollector::bind({0, 0});
  ASSERT_TRUE(collector.has_value()) << collector.error().message;
  const auto ports = collector->ports();
  ASSERT_EQ(ports.size(), 2u);
  ASSERT_NE(ports[0], ports[1]);

  auto sender = UdpSender::create();
  ASSERT_TRUE(sender.has_value());

  traffic::NormalTrafficModel model;
  util::Rng rng{1};
  std::size_t sent_flows = 0;
  for (int source = 0; source < 2; ++source) {
    const auto trace = model.generate(45, 0, rng);
    dagflow::Dagflow replayer(
        dagflow::DagflowConfig{.netflow_port = ports[static_cast<std::size_t>(source)]},
        dagflow::AddressPool::from_subblocks({*net::SubBlock::parse("1a")}),
        static_cast<std::uint64_t>(source + 2));
    const auto labeled = replayer.replay(trace);
    sent_flows += labeled.size();
    for (const auto& datagram : replayer.export_datagrams(labeled, 1000)) {
      ASSERT_TRUE(sender->send(replayer.netflow_port(), datagram).has_value());
    }
  }

  const auto collected = collector->collect(sent_flows, 2000);
  ASSERT_TRUE(collected.has_value()) << collected.error().message;
  EXPECT_EQ(*collected, sent_flows);
  EXPECT_EQ(collector->capture().flows().size(), sent_flows);
  EXPECT_EQ(collector->capture().sequence_gaps(), 0u);

  // Arrival ports tag the emulated ingress.
  std::size_t on_first = 0;
  for (const auto& flow : collector->capture().flows()) {
    EXPECT_TRUE(flow.arrival_port == ports[0] || flow.arrival_port == ports[1]);
    on_first += flow.arrival_port == ports[0] ? 1 : 0;
  }
  EXPECT_EQ(on_first, 45u);
}

TEST(UdpReceiver, ZeroLengthDatagramDistinctFromIdleSocket) {
  auto receiver = UdpReceiver::bind(0);
  ASSERT_TRUE(receiver.has_value());
  auto sender = UdpSender::create();
  ASSERT_TRUE(sender.has_value());

  std::uint8_t buffer[64];
  // Idle socket: no datagram, by construction not a zero-length one.
  auto idle = receiver->receive_into(buffer);
  ASSERT_TRUE(idle.has_value());
  EXPECT_FALSE(idle->datagram);

  // A zero-length datagram is legal UDP and must be reported as a
  // consumed datagram, not as "nothing waiting".
  ASSERT_TRUE(sender->send(receiver->port(), {}).has_value());
  ReceivedDatagram got;
  for (int i = 0; i < 100 && !got.datagram; ++i) {
    auto received = receiver->receive_into(buffer);
    ASSERT_TRUE(received.has_value());
    got = *received;
  }
  EXPECT_TRUE(got.datagram);
  EXPECT_EQ(got.bytes, 0u);
  EXPECT_EQ(got.wire_bytes, 0u);
  EXPECT_FALSE(got.truncated());
}

TEST(UdpReceiver, TruncatedDatagramReportsWireLength) {
  auto receiver = UdpReceiver::bind(0);
  ASSERT_TRUE(receiver.has_value());
  auto sender = UdpSender::create();
  ASSERT_TRUE(sender.has_value());

  const std::vector<std::uint8_t> payload(100, 0xAB);
  ASSERT_TRUE(sender->send(receiver->port(), payload).has_value());

  std::uint8_t small[16];
  ReceivedDatagram got;
  for (int i = 0; i < 100 && !got.datagram; ++i) {
    auto received = receiver->receive_into(small);
    ASSERT_TRUE(received.has_value());
    got = *received;
  }
  ASSERT_TRUE(got.datagram);
  EXPECT_EQ(got.bytes, sizeof small);       // what fit in the buffer
  EXPECT_EQ(got.wire_bytes, payload.size());  // what was on the wire
  EXPECT_TRUE(got.truncated());
}

TEST(LiveCollector, ZeroLengthDatagramDoesNotStopTheDrain) {
  auto collector = LiveCollector::bind({0});
  ASSERT_TRUE(collector.has_value());
  auto sender = UdpSender::create();
  ASSERT_TRUE(sender.has_value());

  // Zero-length first, valid junk second: with receive()'s empty-vector
  // convention the drain loop used to stop at the zero-length datagram and
  // strand the one behind it until the next poll.
  const auto port = collector->ports()[0];
  ASSERT_TRUE(sender->send(port, {}).has_value());
  const std::vector<std::uint8_t> junk(64, 0xEE);
  ASSERT_TRUE(sender->send(port, junk).has_value());

  const auto stored = collector->poll_once(500);
  ASSERT_TRUE(stored.has_value()) << stored.error().message;
  EXPECT_EQ(*stored, 0u);
  // Both datagrams consumed in one sweep, both counted malformed.
  EXPECT_EQ(collector->capture().datagrams_received(), 2u);
  EXPECT_EQ(collector->capture().datagrams_malformed(), 2u);
}

TEST(LiveCollector, MalformedDatagramCountedNotFatal) {
  auto collector = LiveCollector::bind({0});
  ASSERT_TRUE(collector.has_value());
  auto sender = UdpSender::create();
  ASSERT_TRUE(sender.has_value());
  const std::vector<std::uint8_t> junk(64, 0xEE);
  ASSERT_TRUE(sender->send(collector->ports()[0], junk).has_value());
  const auto stored = collector->poll_once(500);
  ASSERT_TRUE(stored.has_value()) << stored.error().message;
  EXPECT_EQ(*stored, 0u);
  EXPECT_EQ(collector->capture().datagrams_malformed(), 1u);
}

TEST(LiveCollector, PollTimesOutQuietly) {
  auto collector = LiveCollector::bind({0});
  ASSERT_TRUE(collector.has_value());
  const auto stored = collector->poll_once(10);
  ASSERT_TRUE(stored.has_value());
  EXPECT_EQ(*stored, 0u);
}

}  // namespace
}  // namespace infilter::flowtools

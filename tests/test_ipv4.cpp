// Unit tests for the IPv4 value types (net/ipv4.h).

#include "net/ipv4.h"

#include <gtest/gtest.h>

#include <tuple>

namespace infilter::net {
namespace {

TEST(IPv4Address, DefaultIsZero) {
  EXPECT_EQ(IPv4Address{}.value(), 0u);
  EXPECT_EQ(IPv4Address{}.to_string(), "0.0.0.0");
}

TEST(IPv4Address, OctetConstructorOrdersBytes) {
  const IPv4Address a{192, 0, 2, 33};
  EXPECT_EQ(a.value(), 0xC0000221u);
  EXPECT_EQ(a.octet(0), 192);
  EXPECT_EQ(a.octet(1), 0);
  EXPECT_EQ(a.octet(2), 2);
  EXPECT_EQ(a.octet(3), 33);
}

TEST(IPv4Address, ParseValid) {
  const auto a = IPv4Address::parse("10.1.255.0");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, (IPv4Address{10, 1, 255, 0}));
}

TEST(IPv4Address, ParseRoundTripsToString) {
  const IPv4Address original{203, 0, 113, 77};
  const auto parsed = IPv4Address::parse(original.to_string());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, original);
}

class IPv4ParseRejects : public ::testing::TestWithParam<const char*> {};

TEST_P(IPv4ParseRejects, Rejects) {
  EXPECT_FALSE(IPv4Address::parse(GetParam()).has_value()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Malformed, IPv4ParseRejects,
                         ::testing::Values("", "1.2.3", "1.2.3.4.5", "256.0.0.1",
                                           "1.2.3.999", "a.b.c.d", "1..2.3",
                                           "1.2.3.4 ", " 1.2.3.4", "1.2.3.4x",
                                           "-1.2.3.4", "1.2.3.-4"));

TEST(IPv4Address, OrderingIsNumeric) {
  EXPECT_LT((IPv4Address{9, 255, 255, 255}), (IPv4Address{10, 0, 0, 0}));
  EXPECT_LT((IPv4Address{10, 0, 0, 1}), (IPv4Address{10, 0, 1, 0}));
}

TEST(Prefix, CanonicalizesHostBits) {
  const Prefix p{IPv4Address{10, 1, 2, 3}, 16};
  EXPECT_EQ(p.address(), (IPv4Address{10, 1, 0, 0}));
  EXPECT_EQ(p.to_string(), "10.1.0.0/16");
}

TEST(Prefix, FirstLastAndSize) {
  const Prefix p{IPv4Address{192, 168, 4, 0}, 22};
  EXPECT_EQ(p.first(), (IPv4Address{192, 168, 4, 0}));
  EXPECT_EQ(p.last(), (IPv4Address{192, 168, 7, 255}));
  EXPECT_EQ(p.size(), 1024u);
}

TEST(Prefix, SlashZeroCoversEverything) {
  const Prefix p{IPv4Address{1, 2, 3, 4}, 0};
  EXPECT_TRUE(p.contains(IPv4Address{0, 0, 0, 0}));
  EXPECT_TRUE(p.contains(IPv4Address{255, 255, 255, 255}));
  EXPECT_EQ(p.size(), std::uint64_t{1} << 32);
}

TEST(Prefix, Slash32IsSingleAddress) {
  const Prefix p{IPv4Address{8, 8, 8, 8}, 32};
  EXPECT_TRUE(p.contains(IPv4Address{8, 8, 8, 8}));
  EXPECT_FALSE(p.contains(IPv4Address{8, 8, 8, 9}));
  EXPECT_EQ(p.size(), 1u);
}

struct ContainsCase {
  const char* prefix;
  const char* address;
  bool contained;
};

class PrefixContains : public ::testing::TestWithParam<ContainsCase> {};

TEST_P(PrefixContains, Matches) {
  const auto& c = GetParam();
  const auto prefix = Prefix::parse(c.prefix);
  const auto address = IPv4Address::parse(c.address);
  ASSERT_TRUE(prefix.has_value());
  ASSERT_TRUE(address.has_value());
  EXPECT_EQ(prefix->contains(*address), c.contained)
      << c.prefix << " contains " << c.address;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, PrefixContains,
    ::testing::Values(ContainsCase{"10.0.0.0/8", "10.255.1.2", true},
                      ContainsCase{"10.0.0.0/8", "11.0.0.0", false},
                      ContainsCase{"214.32.0.0/11", "214.63.255.255", true},
                      ContainsCase{"214.32.0.0/11", "214.64.0.0", false},
                      ContainsCase{"214.32.0.0/11", "214.31.255.255", false},
                      ContainsCase{"0.0.0.0/1", "127.255.255.255", true},
                      ContainsCase{"0.0.0.0/1", "128.0.0.0", false},
                      ContainsCase{"192.0.2.128/25", "192.0.2.128", true},
                      ContainsCase{"192.0.2.128/25", "192.0.2.127", false}));

TEST(Prefix, ContainsPrefixRequiresCoverage) {
  const auto outer = *Prefix::parse("10.0.0.0/8");
  const auto inner = *Prefix::parse("10.32.0.0/11");
  EXPECT_TRUE(outer.contains(inner));
  EXPECT_FALSE(inner.contains(outer));
  EXPECT_TRUE(outer.contains(outer));
}

TEST(Prefix, ParseRejectsBadMask) {
  EXPECT_FALSE(Prefix::parse("10.0.0.0/33").has_value());
  EXPECT_FALSE(Prefix::parse("10.0.0.0/-1").has_value());
  EXPECT_FALSE(Prefix::parse("10.0.0.0/").has_value());
  EXPECT_FALSE(Prefix::parse("10.0.0.0/8x").has_value());
}

TEST(Prefix, BareAddressParsesAsHostRoute) {
  const auto p = Prefix::parse("198.51.100.7");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->length(), 32);
  EXPECT_EQ(p->address(), (IPv4Address{198, 51, 100, 7}));
}

TEST(Slash24, TruncatesToSubnet) {
  EXPECT_EQ(to_slash24(IPv4Address{10, 1, 2, 200}),
            (Prefix{IPv4Address{10, 1, 2, 0}, 24}));
  EXPECT_EQ(to_slash24(IPv4Address{10, 1, 2, 200}),
            to_slash24(IPv4Address{10, 1, 2, 3}));
  EXPECT_NE(to_slash24(IPv4Address{10, 1, 2, 200}),
            to_slash24(IPv4Address{10, 1, 3, 200}));
}

TEST(Hashing, DistinctAddressesUsuallyDiffer) {
  const std::hash<IPv4Address> h;
  EXPECT_NE(h(IPv4Address{1, 2, 3, 4}), h(IPv4Address{1, 2, 3, 5}));
}

}  // namespace
}  // namespace infilter::net

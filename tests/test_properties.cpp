// Property-based tests: randomized inputs checked against reference
// models and invariants, parameterized over seeds (TEST_P sweeps).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_map>

#include "core/eia.h"
#include "core/scan.h"
#include "dagflow/dagflow.h"
#include "netflow/flow_cache.h"
#include "netflow/v5.h"
#include "nns/encoding.h"
#include "nns/kor.h"
#include "sim/testbed.h"
#include "util/rng.h"

namespace infilter {
namespace {

class SeededProperty : public ::testing::TestWithParam<std::uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99999u));

// --- EiaSet vs a reference interval set -------------------------------

TEST_P(SeededProperty, EiaSetMatchesReferenceModel) {
  util::Rng rng{GetParam()};
  core::EiaSet set;
  // Reference: explicit membership over a small address universe. Keep the
  // universe at 2^16 addresses (10.0.x.y) so exhaustive checks are cheap.
  std::vector<bool> reference(1 << 16, false);

  for (int i = 0; i < 120; ++i) {
    const int length = static_cast<int>(rng.range(18, 32));
    const auto base = static_cast<std::uint32_t>(rng.below(1 << 16));
    const net::Prefix prefix{net::IPv4Address{0x0A000000u + base}, length};
    set.add(prefix);
    for (std::uint32_t a = prefix.first().value(); a <= prefix.last().value(); ++a) {
      if ((a & 0xFFFF0000u) == 0x0A000000u) reference[a & 0xFFFFu] = true;
    }
  }
  // Membership agrees on 4000 random probes plus structured corners.
  for (int probe = 0; probe < 4000; ++probe) {
    const auto a = static_cast<std::uint32_t>(rng.below(1 << 16));
    EXPECT_EQ(set.contains(net::IPv4Address{0x0A000000u + a}), reference[a]) << a;
  }
  // Ranges stay sorted, disjoint and non-adjacent (canonical form) --
  // implied by matching the reference everywhere plus minimal range count:
  std::uint64_t runs = 0;
  for (std::size_t a = 0; a < reference.size(); ++a) {
    if (reference[a] && (a == 0 || !reference[a - 1])) ++runs;
  }
  EXPECT_EQ(set.range_count(), runs);
}

// --- FlowCache conservation against a packet ledger -------------------

TEST_P(SeededProperty, FlowCacheConservesPacketsAndBytes) {
  util::Rng rng{GetParam()};
  netflow::FlowCacheConfig config;
  config.max_entries = 64;
  config.idle_timeout = 5000;
  config.active_timeout = 60000;
  netflow::FlowCache cache{config};

  std::uint64_t packets_in = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t packets_out = 0;
  std::uint64_t bytes_out = 0;

  util::TimeMs now = 0;
  for (int i = 0; i < 3000; ++i) {
    now += rng.below(200);
    netflow::PacketObservation packet;
    packet.key.src_ip = net::IPv4Address{10, 0, 0, static_cast<std::uint8_t>(rng.below(40))};
    packet.key.dst_ip = net::IPv4Address{100, 64, 0, static_cast<std::uint8_t>(rng.below(8))};
    packet.key.proto = rng.chance(0.7) ? 6 : 17;
    packet.key.src_port = static_cast<std::uint16_t>(rng.range(1024, 1060));
    packet.key.dst_port = 80;
    packet.bytes = static_cast<std::uint32_t>(rng.range(40, 1500));
    packet.tcp_flags = rng.chance(0.05) ? netflow::tcpflags::kFin : 0;
    packet.time = now;
    packets_in += 1;
    bytes_in += packet.bytes;
    cache.observe(packet);
    if (i % 50 == 0) cache.advance(now);
    for (const auto& record : cache.drain_expired()) {
      packets_out += record.packets;
      bytes_out += record.bytes;
    }
  }
  for (const auto& record : cache.flush(now + 1)) {
    packets_out += record.packets;
    bytes_out += record.bytes;
  }
  // Every packet and byte observed leaves the cache exactly once.
  EXPECT_EQ(packets_in, packets_out);
  EXPECT_EQ(bytes_in, bytes_out);
  EXPECT_EQ(cache.active_flows(), 0u);
}

TEST_P(SeededProperty, FlowCacheRecordsRespectTimestamps) {
  util::Rng rng{GetParam() ^ 0xabcd};
  netflow::FlowCache cache{netflow::FlowCacheConfig{}};
  util::TimeMs now = 1000;
  for (int i = 0; i < 500; ++i) {
    now += rng.below(100);
    netflow::PacketObservation packet;
    packet.key.src_ip = net::IPv4Address{static_cast<std::uint32_t>(rng.below(16))};
    packet.key.dst_ip = net::IPv4Address{1, 2, 3, 4};
    packet.key.proto = 17;
    packet.bytes = 100;
    packet.time = now;
    cache.observe(packet);
  }
  for (const auto& record : cache.flush(now)) {
    EXPECT_LE(record.first, record.last);
    EXPECT_GE(record.packets, 1u);
  }
}

// --- NetFlow decode fuzz ----------------------------------------------

TEST_P(SeededProperty, DecodeNeverAcceptsRandomBytes) {
  util::Rng rng{GetParam() ^ 0xf00d};
  for (int trial = 0; trial < 400; ++trial) {
    std::vector<std::uint8_t> buffer(rng.below(200));
    for (auto& byte : buffer) byte = static_cast<std::uint8_t>(rng());
    // Random buffers essentially never carry version 5 with a consistent
    // length; whatever the outcome, decode must not crash and an accepted
    // buffer must be structurally consistent.
    const auto decoded = netflow::decode(buffer);
    if (decoded.has_value()) {
      EXPECT_EQ(buffer.size(), netflow::kV5HeaderBytes +
                                   decoded->records.size() * netflow::kV5RecordBytes);
    }
  }
}

TEST_P(SeededProperty, DecodeRejectsAllTruncations) {
  util::Rng rng{GetParam() ^ 0xbeef};
  std::vector<netflow::V5Record> records(3);
  for (auto& r : records) {
    r.src_ip = net::IPv4Address{static_cast<std::uint32_t>(rng())};
    r.packets = 1;
    r.bytes = 40;
  }
  const auto wire = netflow::encode(netflow::V5Header{}, records);
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    const auto truncated =
        std::vector<std::uint8_t>(wire.begin(), wire.begin() + static_cast<long>(cut));
    EXPECT_FALSE(netflow::decode(truncated).has_value()) << "cut at " << cut;
  }
  EXPECT_TRUE(netflow::decode(wire).has_value());
}

// --- Unary encoding: Hamming distance is an L1 metric ------------------

TEST_P(SeededProperty, UnaryDistanceIsL1OnQuantizedFeatures) {
  util::Rng rng{GetParam() ^ 0x111};
  const nns::UnaryEncoder encoder({{0, 1000}, {0, 50}, {0, 1e6}}, 60);
  for (int trial = 0; trial < 200; ++trial) {
    const std::vector<double> x{rng.uniform() * 1000, rng.uniform() * 50,
                                rng.uniform() * 1e6};
    const std::vector<double> y{rng.uniform() * 1000, rng.uniform() * 50,
                                rng.uniform() * 1e6};
    int l1 = 0;
    for (std::size_t c = 0; c < x.size(); ++c) {
      l1 += std::abs(encoder.quantize(x[c], c) - encoder.quantize(y[c], c));
    }
    EXPECT_EQ(encoder.encode(x).hamming_distance(encoder.encode(y)), l1);
  }
}

// --- KOR: reported distances are real and never below the exact NN -----

TEST_P(SeededProperty, KorDistanceNeverBeatsExact) {
  util::Rng rng{GetParam() ^ 0x222};
  const nns::UnaryEncoder encoder({{0, 1000}}, 240);
  std::vector<nns::BitVector> training;
  for (int i = 0; i < 120; ++i) {
    // Two clusters plus sparse outliers.
    double value = rng.chance(0.45)   ? 100 + rng.uniform() * 60
                   : rng.chance(0.8) ? 700 + rng.uniform() * 60
                                     : rng.uniform() * 1000;
    training.push_back(encoder.encode(std::vector<double>{value}));
  }
  nns::KorParams params;
  params.seed = GetParam();
  const nns::KorNns kor(training, params);
  const nns::ExactNns exact(training);
  util::Rng query_rng{GetParam() ^ 0x333};
  int found = 0;
  for (int q = 0; q < 100; ++q) {
    const auto query =
        encoder.encode(std::vector<double>{query_rng.uniform() * 1000});
    const auto approx = kor.search(query, query_rng);
    const auto truth = exact.search(query, query_rng);
    ASSERT_TRUE(truth.has_value());
    if (approx.has_value()) {
      ++found;
      EXPECT_GE(approx->distance, truth->distance);
      // The returned index really is a training flow at that distance.
      EXPECT_EQ(approx->distance,
                query.hamming_distance(kor.training_flow(approx->index)));
    }
  }
  EXPECT_GT(found, 80);  // the structure finds neighbors for most queries
}

// --- ScanAnalysis vs a naive sliding-window recount ---------------------

TEST_P(SeededProperty, ScanCountersMatchNaiveRecount) {
  util::Rng rng{GetParam() ^ 0x444};
  core::ScanConfig config;
  config.buffer_size = 64;
  config.network_scan_threshold = 1 << 20;  // never trip: observe only
  config.host_scan_threshold = 1 << 20;
  core::ScanAnalysis scan(config);
  std::deque<std::pair<std::uint32_t, std::uint16_t>> window;

  for (int i = 0; i < 2000; ++i) {
    netflow::V5Record record;
    record.dst_ip = net::IPv4Address{static_cast<std::uint32_t>(rng.below(12))};
    record.dst_port = static_cast<std::uint16_t>(rng.below(6));
    scan.observe(record);
    window.emplace_back(record.dst_ip.value(), record.dst_port);
    if (window.size() > config.buffer_size) window.pop_front();

    if (i % 97 != 0) continue;
    // Recount from the reference window.
    std::set<std::uint32_t> hosts;
    std::set<std::uint16_t> ports;
    for (const auto& [host, port] : window) {
      if (port == record.dst_port) hosts.insert(host);
      if (host == record.dst_ip.value()) ports.insert(port);
    }
    EXPECT_EQ(scan.hosts_on_port(record.dst_port), static_cast<int>(hosts.size()));
    EXPECT_EQ(scan.ports_on_host(record.dst_ip), static_cast<int>(ports.size()));
  }
}

// --- AddressPool clustering --------------------------------------------

TEST_P(SeededProperty, ClusteredPoolUsesAtMostKSlash24sPerBlock) {
  util::Rng rng{GetParam() ^ 0x555};
  const auto block = *net::SubBlock::parse("42c");
  dagflow::AddressPool pool({{{block.prefix()}, 1.0, 4}});
  std::set<std::uint32_t> slash24s;
  for (int i = 0; i < 5000; ++i) {
    const auto address = pool.draw(rng);
    EXPECT_TRUE(block.prefix().contains(address));
    slash24s.insert(address.value() >> 8);
  }
  EXPECT_LE(slash24s.size(), 4u);
  EXPECT_GE(slash24s.size(), 2u);  // skewed, but not degenerate
}

// --- Testbed metamorphic relations -------------------------------------

sim::ExperimentConfig tiny_config(std::uint64_t seed) {
  sim::ExperimentConfig config;
  config.normal_flows_per_source = 1000;
  config.training_flows = 500;
  config.attack_volume = 0.04;
  config.engine.cluster.bits_per_feature = 48;
  config.seed = seed;
  return config;
}

TEST_P(SeededProperty, BasicNeverHasFewerFalsePositivesThanEnhanced) {
  auto config = tiny_config(GetParam());
  config.route_change_blocks = 4;
  config.engine.mode = core::EngineMode::kBasic;
  const auto basic = sim::run_experiment(config);
  config.engine.mode = core::EngineMode::kEnhanced;
  const auto enhanced = sim::run_experiment(config);
  EXPECT_GE(basic.false_positive_rate(), enhanced.false_positive_rate());
  EXPECT_GE(basic.detection_rate(), enhanced.detection_rate());
}

TEST_P(SeededProperty, MoreDriftMoreBasicFalsePositives) {
  auto config = tiny_config(GetParam() ^ 0x666);
  config.engine.mode = core::EngineMode::kBasic;
  config.companion_fraction = 0;
  config.ingress_drift = 0.005;
  const auto low = sim::run_experiment(config);
  config.ingress_drift = 0.04;
  const auto high = sim::run_experiment(config);
  EXPECT_GT(high.false_positive_rate(), low.false_positive_rate());
}

TEST_P(SeededProperty, DetectionLatencyIsNonNegativeAndFinite) {
  const auto result = sim::run_experiment(tiny_config(GetParam() ^ 0x777));
  EXPECT_GE(result.mean_detection_latency_ms, 0.0);
  EXPECT_LT(result.mean_detection_latency_ms, 1e7);
}

}  // namespace
}  // namespace infilter

// Tests for the ASCII flow interchange (flowtools/ascii.h).

#include "flowtools/ascii.h"

#include <gtest/gtest.h>

#include "dagflow/dagflow.h"
#include "traffic/normal.h"

namespace infilter::flowtools {
namespace {

std::vector<CapturedFlow> sample_flows(std::size_t count) {
  traffic::NormalTrafficModel model;
  util::Rng rng{77};
  const auto trace = model.generate(count, 0, rng);
  dagflow::Dagflow replayer(
      dagflow::DagflowConfig{},
      dagflow::AddressPool::from_subblocks({*net::SubBlock::parse("9d")}), 78);
  std::vector<CapturedFlow> flows;
  for (const auto& labeled : replayer.replay(trace)) {
    CapturedFlow flow;
    flow.record = labeled.record;
    flow.arrival_port = 9004;
    flow.export_time_ms = 123456;
    flows.push_back(flow);
  }
  return flows;
}

TEST(AsciiFlows, HeaderIsFirstLine) {
  const auto text = export_ascii(sample_flows(3));
  EXPECT_EQ(text.substr(0, ascii_header().size()), ascii_header());
}

TEST(AsciiFlows, RoundTripPreservesEverything) {
  const auto flows = sample_flows(120);
  const auto imported = import_ascii(export_ascii(flows));
  ASSERT_TRUE(imported.has_value()) << imported.error().message;
  ASSERT_EQ(imported->size(), flows.size());
  for (std::size_t i = 0; i < flows.size(); ++i) {
    EXPECT_EQ((*imported)[i].record, flows[i].record) << i;
    EXPECT_EQ((*imported)[i].arrival_port, flows[i].arrival_port) << i;
    EXPECT_EQ((*imported)[i].export_time_ms, flows[i].export_time_ms) << i;
  }
}

TEST(AsciiFlows, EmptyExportRoundTrips) {
  const auto imported = import_ascii(export_ascii({}));
  ASSERT_TRUE(imported.has_value());
  EXPECT_TRUE(imported->empty());
}

TEST(AsciiFlows, SkipsCommentsAndBlankLines) {
  std::string text(ascii_header());
  text += "\n# a comment\n\n";
  text += "1.2.3.4,5.6.7.8,6,1024,80,0,0,10,5000,0,1000,27,0,0,9001,42\n";
  const auto imported = import_ascii(text);
  ASSERT_TRUE(imported.has_value()) << imported.error().message;
  ASSERT_EQ(imported->size(), 1u);
  EXPECT_EQ(imported->front().record.bytes, 5000u);
  EXPECT_EQ(imported->front().record.tcp_flags, 27);
  EXPECT_EQ(imported->front().arrival_port, 9001);
}

TEST(AsciiFlows, RejectsMissingHeader) {
  EXPECT_FALSE(
      import_ascii("1.2.3.4,5.6.7.8,6,1024,80,0,0,10,5000,0,1000,27,0,0,9001,42\n")
          .has_value());
}

TEST(AsciiFlows, RejectsWrongFieldCount) {
  std::string text(ascii_header());
  text += "\n1.2.3.4,5.6.7.8,6,1024\n";
  const auto imported = import_ascii(text);
  ASSERT_FALSE(imported.has_value());
  EXPECT_NE(imported.error().message.find("line 2"), std::string::npos);
}

TEST(AsciiFlows, RejectsBadAddress) {
  std::string text(ascii_header());
  text += "\n999.2.3.4,5.6.7.8,6,1024,80,0,0,10,5000,0,1000,27,0,0,9001,42\n";
  EXPECT_FALSE(import_ascii(text).has_value());
}

TEST(AsciiFlows, RejectsOutOfRangeNumbers) {
  std::string text(ascii_header());
  // proto 999 overflows uint8.
  text += "\n1.2.3.4,5.6.7.8,999,1024,80,0,0,10,5000,0,1000,27,0,0,9001,42\n";
  EXPECT_FALSE(import_ascii(text).has_value());
}

TEST(AsciiFlows, ToleratesCrLf) {
  std::string text(ascii_header());
  text += "\r\n1.2.3.4,5.6.7.8,6,1024,80,0,0,10,5000,0,1000,27,0,0,9001,42\r\n";
  const auto imported = import_ascii(text);
  ASSERT_TRUE(imported.has_value()) << imported.error().message;
  EXPECT_EQ(imported->size(), 1u);
}

}  // namespace
}  // namespace infilter::flowtools

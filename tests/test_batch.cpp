// Batch/per-flow equivalence: the batched NNS hot path (KorNns::search_batch,
// TrainedClusters::assess_batch, InFilterEngine::process_batch) promises
// verdicts bit-for-bit identical to the per-flow path. These tests pin that
// promise at every layer, up to a golden run of the full testbed workload.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <optional>
#include <span>
#include <vector>

#include "core/engine.h"
#include "runtime/runtime.h"
#include "sim/testbed.h"

namespace infilter {
namespace {

using core::InFilterEngine;
using core::TrainedClusters;

sim::ExperimentConfig workload_config() {
  sim::ExperimentConfig config;
  config.normal_flows_per_source = 1500;
  config.training_flows = 600;
  config.attack_volume = 0.04;
  config.engine.cluster.bits_per_feature = 48;  // d = 240: fast tests
  config.seed = 21;
  return config;
}

core::EngineConfig workload_engine_config(const sim::ExperimentConfig& config) {
  core::EngineConfig engine = config.engine;
  engine.seed = config.seed ^ 0xe191eULL;
  return engine;
}

void preload_eia(InFilterEngine& engine, const sim::ExperimentConfig& config) {
  for (int s = 0; s < config.sources; ++s) {
    const auto port = static_cast<core::IngressId>(config.first_port + s);
    const auto range = dagflow::eia_range(s, config.blocks_per_source);
    for (int b = range.first.index(); b <= range.last.index(); ++b) {
      engine.add_expected(port, net::SubBlock{b}.prefix());
    }
  }
}

void expect_same_verdict(const core::Verdict& a, const core::Verdict& b,
                         std::size_t flow) {
  EXPECT_EQ(a.attack, b.attack) << "flow " << flow;
  EXPECT_EQ(a.stage, b.stage) << "flow " << flow;
  EXPECT_EQ(a.suspect, b.suspect) << "flow " << flow;
  ASSERT_EQ(a.nns.has_value(), b.nns.has_value()) << "flow " << flow;
  if (a.nns.has_value()) {
    EXPECT_EQ(a.nns->anomalous, b.nns->anomalous) << "flow " << flow;
    EXPECT_EQ(a.nns->cluster, b.nns->cluster) << "flow " << flow;
    EXPECT_EQ(a.nns->distance, b.nns->distance) << "flow " << flow;
    EXPECT_EQ(a.nns->threshold, b.nns->threshold) << "flow " << flow;
  }
}

void expect_same_alerts(const std::vector<alert::Alert>& a,
                        const std::vector<alert::Alert>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id) << "alert " << i;
    EXPECT_EQ(a[i].create_time, b[i].create_time) << "alert " << i;
    EXPECT_EQ(a[i].stage, b[i].stage) << "alert " << i;
    EXPECT_EQ(a[i].source_ip, b[i].source_ip) << "alert " << i;
    EXPECT_EQ(a[i].target_ip, b[i].target_ip) << "alert " << i;
    EXPECT_EQ(a[i].target_port, b[i].target_port) << "alert " << i;
    EXPECT_EQ(a[i].ingress_port, b[i].ingress_port) << "alert " << i;
    EXPECT_EQ(a[i].expected_ingress, b[i].expected_ingress) << "alert " << i;
    EXPECT_EQ(a[i].nns_distance, b[i].nns_distance) << "alert " << i;
    EXPECT_EQ(a[i].nns_threshold, b[i].nns_threshold) << "alert " << i;
  }
}

/// Golden test: the full testbed workload (normal traffic + every attack
/// tool + route drift) through process_batch at several batch sizes must
/// reproduce the per-flow verdict and alert streams exactly.
TEST(BatchGolden, TestbedWorkloadMatchesPerFlowBitForBit) {
  const sim::ExperimentConfig config = workload_config();
  const sim::TestbedStream stream = sim::generate_stream(config);
  ASSERT_GT(stream.flows.size(), 1000u);
  const auto clusters = sim::train_clusters(config);

  // Reference: the per-flow path.
  alert::CollectingSink serial_sink;
  InFilterEngine serial(workload_engine_config(config), &serial_sink);
  preload_eia(serial, config);
  serial.set_clusters(clusters);
  std::vector<core::Verdict> reference;
  reference.reserve(stream.flows.size());
  for (const auto& flow : stream.flows) {
    reference.push_back(
        serial.process(flow.record, flow.arrival_port, flow.record.last));
  }

  for (const std::size_t batch_size : {std::size_t{1}, std::size_t{7},
                                       std::size_t{256}}) {
    SCOPED_TRACE(batch_size);
    alert::CollectingSink batch_sink;
    InFilterEngine batched(workload_engine_config(config), &batch_sink);
    preload_eia(batched, config);
    batched.set_clusters(clusters);

    std::vector<core::FlowInput> inputs(batch_size);
    std::vector<core::Verdict> verdicts(batch_size);
    for (std::size_t begin = 0; begin < stream.flows.size();
         begin += batch_size) {
      const std::size_t n = std::min(batch_size, stream.flows.size() - begin);
      for (std::size_t i = 0; i < n; ++i) {
        const auto& flow = stream.flows[begin + i];
        inputs[i] =
            core::FlowInput{flow.record, flow.arrival_port, flow.record.last};
      }
      batched.process_batch(std::span<const core::FlowInput>(inputs.data(), n),
                            std::span<core::Verdict>(verdicts.data(), n));
      for (std::size_t i = 0; i < n; ++i) {
        expect_same_verdict(reference[begin + i], verdicts[i], begin + i);
      }
      if (::testing::Test::HasFailure()) return;  // don't flood the log
    }
    expect_same_alerts(serial_sink.alerts(), batch_sink.alerts());
    EXPECT_EQ(serial.flows_processed(), batched.flows_processed());
    EXPECT_EQ(serial.alerts_emitted(), batched.alerts_emitted());
  }
}

/// Counter totals must also agree with the per-flow path, including the
/// latency histogram sample counts the metrics-reconciliation tests pin.
TEST(BatchGolden, MetricsTotalsMatchPerFlow) {
  const sim::ExperimentConfig config = workload_config();
  const sim::TestbedStream stream = sim::generate_stream(config);
  const auto clusters = sim::train_clusters(config);

  InFilterEngine serial(workload_engine_config(config));
  preload_eia(serial, config);
  serial.set_clusters(clusters);
  for (const auto& flow : stream.flows) {
    (void)serial.process(flow.record, flow.arrival_port, flow.record.last);
  }

  InFilterEngine batched(workload_engine_config(config));
  preload_eia(batched, config);
  batched.set_clusters(clusters);
  constexpr std::size_t kBatch = 64;
  std::vector<core::FlowInput> inputs(kBatch);
  std::vector<core::Verdict> verdicts(kBatch);
  for (std::size_t begin = 0; begin < stream.flows.size(); begin += kBatch) {
    const std::size_t n = std::min(kBatch, stream.flows.size() - begin);
    for (std::size_t i = 0; i < n; ++i) {
      const auto& flow = stream.flows[begin + i];
      inputs[i] =
          core::FlowInput{flow.record, flow.arrival_port, flow.record.last};
    }
    batched.process_batch(std::span<const core::FlowInput>(inputs.data(), n),
                          std::span<core::Verdict>(verdicts.data(), n));
  }

  const auto serial_snapshot = serial.registry().snapshot();
  const auto batch_snapshot = batched.registry().snapshot();
  for (const auto& metric : serial_snapshot.metrics) {
    // The NNS index totals aggregate over every sharer of the one
    // TrainedClusters, so both engines read the combined count -- equal by
    // construction, not informative here.
    if (metric.name.starts_with("infilter_nns_index") ||
        metric.name.starts_with("infilter_nns_no_neighbor")) {
      continue;
    }
    const auto* other = batch_snapshot.find(metric.name);
    ASSERT_NE(other, nullptr) << metric.name;
    if (metric.histogram.has_value()) {
      ASSERT_TRUE(other->histogram.has_value()) << metric.name;
      EXPECT_EQ(metric.histogram->count, other->histogram->count) << metric.name;
    } else {
      EXPECT_EQ(metric.value, other->value) << metric.name;
    }
  }
}

/// The sharded runtime now drives engines through process_batch; an odd
/// max_batch exercises ragged dequeue batches. With scan analysis off the
/// sharded pipeline is exactly serial-equivalent (runtime/runtime.h), so
/// every verdict must match the per-flow serial engine's.
TEST(BatchRuntime, OddMaxBatchMatchesSerialVerdicts) {
  sim::ExperimentConfig config = workload_config();
  config.engine.use_scan_analysis = false;
  const sim::TestbedStream stream = sim::generate_stream(config);
  const auto clusters = sim::train_clusters(config);

  InFilterEngine serial(workload_engine_config(config));
  preload_eia(serial, config);
  serial.set_clusters(clusters);
  std::vector<core::Verdict> reference;
  reference.reserve(stream.flows.size());
  for (const auto& flow : stream.flows) {
    reference.push_back(
        serial.process(flow.record, flow.arrival_port, flow.record.last));
  }

  runtime::RuntimeConfig runtime_config;
  runtime_config.shards = 3;
  runtime_config.max_batch = 7;
  runtime_config.engine = workload_engine_config(config);
  std::atomic<std::uint64_t> mismatches{0};
  std::atomic<std::uint64_t> hooked{0};
  runtime::ShardedRuntime runtime(
      runtime_config, nullptr,
      [&](const runtime::FlowItem& item, const core::Verdict& verdict) {
        hooked.fetch_add(1, std::memory_order_relaxed);
        const core::Verdict& expected = reference[item.tag];
        const bool same =
            expected.attack == verdict.attack && expected.stage == verdict.stage &&
            expected.suspect == verdict.suspect &&
            expected.nns.has_value() == verdict.nns.has_value() &&
            (!expected.nns.has_value() ||
             (expected.nns->distance == verdict.nns->distance &&
              expected.nns->anomalous == verdict.nns->anomalous));
        if (!same) mismatches.fetch_add(1, std::memory_order_relaxed);
      });
  for (int s = 0; s < config.sources; ++s) {
    const auto port = static_cast<core::IngressId>(config.first_port + s);
    const auto range = dagflow::eia_range(s, config.blocks_per_source);
    for (int b = range.first.index(); b <= range.last.index(); ++b) {
      runtime.add_expected(port, net::SubBlock{b}.prefix());
    }
  }
  runtime.set_clusters(clusters);
  for (std::size_t i = 0; i < stream.flows.size(); ++i) {
    const auto& flow = stream.flows[i];
    runtime.submit(flow.record, flow.arrival_port, flow.record.last, i);
  }
  runtime.flush();
  runtime.shutdown();

  EXPECT_EQ(hooked.load(), stream.flows.size());
  EXPECT_EQ(mismatches.load(), 0u);
}

}  // namespace
}  // namespace infilter

// Parameterized sweeps over configuration spaces: topology seeds, KOR
// parameter corners (including the paper-literal settings), flow-cache
// configurations, and experiment knobs.

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "netflow/flow_cache.h"
#include "nns/kor.h"
#include "routing/internet.h"
#include "routing/routeviews.h"
#include "sim/testbed.h"

namespace infilter {
namespace {

// --- Internet / traceroute invariants across seeds ----------------------

class InternetSeeds : public ::testing::TestWithParam<std::uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, InternetSeeds,
                         ::testing::Values(3u, 17u, 255u, 4099u, 70001u));

routing::TopologyConfig sweep_topology() {
  routing::TopologyConfig c;
  c.tier1_count = 3;
  c.tier2_count = 10;
  c.stub_count = 28;
  return c;
}

TEST_P(InternetSeeds, TraceroutesAreWellFormedUnderChurn) {
  routing::Internet internet(sweep_topology(), routing::ChurnRates{}, GetParam());
  const auto n = internet.topology().as_count();
  for (int round = 0; round < 4; ++round) {
    internet.advance(util::kHour);
    for (routing::AsId from = 0; from < n; from += 7) {
      for (routing::AsId to = 2; to < n; to += 11) {
        if (from == to) continue;
        const auto trace = internet.traceroute(from, to);
        if (!trace.complete) continue;  // a partition is legal under churn
        ASSERT_GE(trace.as_path.size(), 2u);
        EXPECT_EQ(trace.as_path.front(), from);
        EXPECT_EQ(trace.as_path.back(), to);
        ASSERT_FALSE(trace.hops.empty());
        // Hop FQDNs name real ASes on the path.
        for (const auto& hop : trace.hops) {
          EXPECT_GE(hop.as, 0);
          EXPECT_LT(hop.as, n);
          EXPECT_NE(hop.fqdn.find(".as"), std::string::npos);
        }
        // The peer/BR extraction is consistent with the AS path.
        const auto* peer = trace.peer_hop();
        const auto* br = trace.br_hop();
        ASSERT_NE(peer, nullptr);
        ASSERT_NE(br, nullptr);
        EXPECT_EQ(peer->as, trace.as_path[trace.as_path.size() - 2]);
        EXPECT_EQ(br->as, to);
      }
    }
  }
}

TEST_P(InternetSeeds, SnapshotTableAnalysisAgreesWithRoutes) {
  const auto topology = routing::AsTopology::generate(sweep_topology(), GetParam());
  const routing::AsId target = static_cast<routing::AsId>(GetParam() % 20);
  const auto prefix = *net::Prefix::parse("100.64.0.0/16");
  const auto table = routing::snapshot_table(topology, target, std::vector{prefix});
  const auto mapping = table.analyze_target(*net::IPv4Address::parse("100.64.3.3"));
  const routing::RouteComputation routes(topology, target);
  for (const auto& [source_asn, peer_asn] : mapping.source_to_peer) {
    const routing::AsId source = source_asn - 7000;
    EXPECT_EQ(peer_asn, topology.as_number(routes.ingress_peer(source)))
        << "source AS" << source_asn;
  }
}

// --- KOR parameter corners ----------------------------------------------

TEST(KorCorners, LiteralPaperConfigurationStillAnswers) {
  // scale_factor 1 (every scale, Figure 6 verbatim), verification off and
  // bucket capacity 1 (Figure 8 verbatim) on a small training set.
  nns::KorParams params;
  params.scale_factor = 1.0;
  params.verification_factor = 0;
  params.bucket_capacity = 1;
  params.seed = 3;

  std::vector<nns::BitVector> training;
  for (int ones = 0; ones <= 96; ones += 8) {
    nns::BitVector v(96);
    for (int i = 0; i < ones; ++i) v.set(i);
    training.push_back(v);
  }
  const nns::KorNns index(training, params);
  util::Rng rng{4};
  int answered = 0;
  for (int q = 0; q <= 96; q += 5) {
    nns::BitVector query(96);
    for (int i = 0; i < q; ++i) query.set(i);
    const auto match = index.search(query, rng);
    if (match.has_value()) {
      ++answered;
      EXPECT_GE(match->index, 0);
      EXPECT_LE(match->distance, 96);
    }
  }
  EXPECT_GT(answered, 10);
}

class KorScaleFactors : public ::testing::TestWithParam<double> {};
INSTANTIATE_TEST_SUITE_P(Factors, KorScaleFactors,
                         ::testing::Values(1.0, 1.2, 1.35, 2.0, 4.0));

TEST_P(KorScaleFactors, CoarserLaddersStayUseful) {
  nns::KorParams params;
  params.scale_factor = GetParam();
  params.seed = 5;
  util::Rng data_rng{6};
  std::vector<nns::BitVector> training;
  for (int i = 0; i < 40; ++i) {
    nns::BitVector v(120);
    const int ones = 30 + static_cast<int>(data_rng.below(20));
    for (int b = 0; b < ones; ++b) v.set(b);
    training.push_back(v);
  }
  const nns::KorNns index(training, params);
  const nns::ExactNns exact(training);
  util::Rng rng{7};
  nns::BitVector query(120);
  for (int b = 0; b < 38; ++b) query.set(b);
  const auto approx = index.search(query, rng);
  const auto truth = exact.search(query, rng);
  ASSERT_TRUE(approx.has_value());
  ASSERT_TRUE(truth.has_value());
  EXPECT_LE(approx->distance, truth->distance + 40);
}

// --- Flow cache configuration sweep -------------------------------------

class CacheConfigs
    : public ::testing::TestWithParam<std::tuple<std::size_t, util::DurationMs>> {};
INSTANTIATE_TEST_SUITE_P(Configs, CacheConfigs,
                         ::testing::Combine(::testing::Values(4u, 32u, 256u),
                                            ::testing::Values(1000u, 15000u)));

TEST_P(CacheConfigs, ConservationHoldsForAnyConfig) {
  const auto [max_entries, idle] = GetParam();
  netflow::FlowCacheConfig config;
  config.max_entries = max_entries;
  config.idle_timeout = idle;
  netflow::FlowCache cache(config);
  util::Rng rng{9};
  std::uint64_t in = 0;
  std::uint64_t out = 0;
  for (int i = 0; i < 1200; ++i) {
    netflow::PacketObservation packet;
    packet.key.src_ip = net::IPv4Address{static_cast<std::uint32_t>(rng.below(60))};
    packet.key.dst_ip = net::IPv4Address{1, 1, 1, 1};
    packet.key.proto = 17;
    packet.bytes = 100;
    packet.time = static_cast<util::TimeMs>(i) * 40;
    cache.observe(packet);
    ++in;
  }
  for (const auto& record : cache.flush(1200 * 40)) out += record.packets;
  EXPECT_EQ(in, out);
}

// --- Experiment knob monotonicity ----------------------------------------

class RouteChangeLevels : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Levels, RouteChangeLevels, ::testing::Values(1, 2, 4, 8));

TEST_P(RouteChangeLevels, BasicFalsePositivesTrackRouteChangeLevel) {
  sim::ExperimentConfig config;
  config.normal_flows_per_source = 1200;
  config.training_flows = 400;
  config.engine.mode = core::EngineMode::kBasic;
  config.companion_fraction = 0;
  config.ingress_drift = 0;
  config.route_change_blocks = GetParam();
  config.seed = 77;
  const auto result = sim::run_experiment(config);
  // FP rate lands in a band around the nominal route-change share, minus
  // what auto-learning absorbs (never more than the share itself).
  const double nominal = GetParam() / 100.0;
  EXPECT_LE(result.false_positive_rate(), nominal * 1.1);
  EXPECT_GE(result.false_positive_rate(), nominal * 0.35);
}

}  // namespace
}  // namespace infilter

// Tests for IDMEF parsing (alert/idmef_io.h).

#include "alert/idmef_io.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace infilter::alert {
namespace {

Alert random_alert(util::Rng& rng) {
  Alert a;
  a.id = rng();
  a.create_time = rng.below(1 << 30);
  a.stage = static_cast<DetectionStage>(rng.below(3));
  a.source_ip = net::IPv4Address{static_cast<std::uint32_t>(rng())};
  a.target_ip = net::IPv4Address{static_cast<std::uint32_t>(rng())};
  a.target_port = static_cast<std::uint16_t>(rng.below(65536));
  a.proto = rng.chance(0.5) ? 6 : 17;
  a.ingress_port = static_cast<std::uint16_t>(9001 + rng.below(10));
  a.expected_ingress = rng.chance(0.5)
                           ? static_cast<int>(9001 + rng.below(10))
                           : -1;
  if (a.stage == DetectionStage::kNnsDistance) {
    a.nns_distance = static_cast<int>(rng.below(720));
    a.nns_threshold = static_cast<int>(rng.below(200));
  }
  a.classification = "spoofed traffic (" + std::string(stage_name(a.stage)) + ")";
  return a;
}

TEST(IdmefParse, RoundTripsRandomAlerts) {
  util::Rng rng{3};
  for (int trial = 0; trial < 60; ++trial) {
    const Alert original = random_alert(rng);
    const auto parsed = parse_idmef(original.to_idmef_xml());
    ASSERT_TRUE(parsed.has_value()) << parsed.error().message;
    EXPECT_EQ(parsed->id, original.id);
    EXPECT_EQ(parsed->create_time, original.create_time);
    EXPECT_EQ(parsed->stage, original.stage);
    EXPECT_EQ(parsed->source_ip, original.source_ip);
    EXPECT_EQ(parsed->target_ip, original.target_ip);
    EXPECT_EQ(parsed->target_port, original.target_port);
    EXPECT_EQ(parsed->ingress_port, original.ingress_port);
    EXPECT_EQ(parsed->expected_ingress, original.expected_ingress);
    EXPECT_EQ(parsed->classification, original.classification);
    if (original.target_port != 0) EXPECT_EQ(parsed->proto, original.proto);
    if (original.stage == DetectionStage::kNnsDistance) {
      EXPECT_EQ(parsed->nns_distance, original.nns_distance);
      EXPECT_EQ(parsed->nns_threshold, original.nns_threshold);
    }
  }
}

TEST(IdmefParse, StreamOfConcatenatedMessages) {
  util::Rng rng{4};
  std::string feed;
  std::vector<Alert> originals;
  for (int i = 0; i < 10; ++i) {
    originals.push_back(random_alert(rng));
    feed += originals.back().to_idmef_xml();
  }
  const auto parsed = parse_idmef_stream(feed);
  ASSERT_TRUE(parsed.has_value()) << parsed.error().message;
  ASSERT_EQ(parsed->size(), originals.size());
  for (std::size_t i = 0; i < originals.size(); ++i) {
    EXPECT_EQ((*parsed)[i].id, originals[i].id) << i;
    EXPECT_EQ((*parsed)[i].source_ip, originals[i].source_ip) << i;
  }
}

TEST(IdmefParse, EmptyStreamIsEmpty) {
  const auto parsed = parse_idmef_stream("");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->empty());
}

TEST(IdmefParse, StreamRejectsUnterminatedMessage) {
  util::Rng rng{5};
  auto xml = random_alert(rng).to_idmef_xml();
  xml.resize(xml.size() / 2);
  const auto parsed = parse_idmef_stream(xml);
  ASSERT_FALSE(parsed.has_value());
  EXPECT_NE(parsed.error().message.find("message 0"), std::string::npos);
}

TEST(IdmefParse, RejectsMissingCreateTime) {
  util::Rng rng{6};
  auto xml = random_alert(rng).to_idmef_xml();
  const auto at = xml.find("<CreateTime>");
  const auto end = xml.find("</CreateTime>") + 13;
  xml.erase(at, end - at);
  EXPECT_FALSE(parse_idmef(xml).has_value());
}

TEST(IdmefParse, RejectsBadAddress) {
  util::Rng rng{7};
  auto xml = random_alert(rng).to_idmef_xml();
  const auto at = xml.find("<address>");
  xml.replace(at, 9, "<address>not-an-ip");
  EXPECT_FALSE(parse_idmef(xml).has_value());
}

TEST(IdmefParse, RejectsUnknownStage) {
  util::Rng rng{8};
  Alert alert = random_alert(rng);
  auto xml = alert.to_idmef_xml();
  const std::string needle(stage_name(alert.stage));
  const auto at = xml.find(">" + needle + "<");
  ASSERT_NE(at, std::string::npos);
  xml.replace(at + 1, needle.size(), "quantum-oracle");
  EXPECT_FALSE(parse_idmef(xml).has_value());
}

TEST(IdmefParse, RejectsNonIdmefText) {
  EXPECT_FALSE(parse_idmef("<html><body>hi</body></html>").has_value());
  EXPECT_FALSE(parse_idmef("").has_value());
}

TEST(IdmefParse, ZeroPortAlertHasNoService) {
  util::Rng rng{9};
  Alert alert = random_alert(rng);
  alert.target_port = 0;
  const auto parsed = parse_idmef(alert.to_idmef_xml());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->target_port, 0);
}

}  // namespace
}  // namespace infilter::alert

// Tests for the bit-vector primitives backing the NNS (nns/bitvector.h).

#include "nns/bitvector.h"

#include <gtest/gtest.h>

#include <cmath>
#include <utility>

namespace infilter::nns {
namespace {

TEST(BitVector, StartsAllZero) {
  const BitVector v(100);
  EXPECT_EQ(v.size(), 100);
  EXPECT_EQ(v.popcount(), 0);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(v.get(i));
}

TEST(BitVector, SetAndGetAcrossWordBoundaries) {
  BitVector v(130);
  for (const int i : {0, 1, 63, 64, 65, 127, 128, 129}) {
    v.set(i);
    EXPECT_TRUE(v.get(i)) << i;
  }
  EXPECT_EQ(v.popcount(), 8);
  v.set(64, false);
  EXPECT_FALSE(v.get(64));
  EXPECT_EQ(v.popcount(), 7);
}

TEST(BitVector, HammingDistanceBasics) {
  BitVector a(720);
  BitVector b(720);
  EXPECT_EQ(a.hamming_distance(b), 0);
  a.set(0);
  a.set(700);
  EXPECT_EQ(a.hamming_distance(b), 2);
  b.set(0);
  EXPECT_EQ(a.hamming_distance(b), 1);
  b.set(350);
  EXPECT_EQ(a.hamming_distance(b), 2);
}

TEST(BitVector, HammingDistanceIsSymmetricMetric) {
  util::Rng rng{1};
  for (int trial = 0; trial < 20; ++trial) {
    const auto a = BitVector::random_biased(256, 0.5, rng);
    const auto b = BitVector::random_biased(256, 0.5, rng);
    const auto c = BitVector::random_biased(256, 0.5, rng);
    EXPECT_EQ(a.hamming_distance(b), b.hamming_distance(a));
    EXPECT_EQ(a.hamming_distance(a), 0);
    // Triangle inequality.
    EXPECT_LE(a.hamming_distance(c),
              a.hamming_distance(b) + b.hamming_distance(c));
  }
}

TEST(BitVector, InnerProductIsParityOfAnd) {
  BitVector a(70);
  BitVector b(70);
  EXPECT_FALSE(a.inner_product(b));
  a.set(5);
  b.set(5);
  EXPECT_TRUE(a.inner_product(b));  // one shared bit -> parity 1
  a.set(69);
  b.set(69);
  EXPECT_FALSE(a.inner_product(b));  // two shared bits -> parity 0
  a.set(33);
  EXPECT_FALSE(a.inner_product(b));  // unshared bit does not count
}

TEST(BitVector, RandomBiasedRespectsBias) {
  util::Rng rng{7};
  // b = 0.5 -> per-bit probability 0.25.
  int ones = 0;
  const int trials = 200;
  const int bits = 512;
  for (int t = 0; t < trials; ++t) {
    ones += BitVector::random_biased(bits, 0.5, rng).popcount();
  }
  const double rate = static_cast<double>(ones) / (trials * bits);
  EXPECT_NEAR(rate, 0.25, 0.01);
}

TEST(BitVector, RandomBiasedZeroBiasIsAllZero) {
  util::Rng rng{8};
  EXPECT_EQ(BitVector::random_biased(512, 0.0, rng).popcount(), 0);
}

/// Scalar reference for the geometric skip sampler: consume the RNG with
/// the same formula, one uniform per set bit, setting bits one by one.
BitVector geometric_reference(int bits, double b, util::Rng& rng) {
  BitVector v(bits);
  const double p = b / 2.0;
  const double denom = std::log1p(-p);
  double position = -1.0;
  for (;;) {
    position += 1.0 + std::floor(std::log1p(-rng.uniform()) / denom);
    if (!(position < static_cast<double>(bits))) break;
    v.set(static_cast<int>(position));
  }
  return v;
}

TEST(BitVector, RandomBiasedMatchesScalarReferenceAtSameSeed) {
  // Pin the production sampler against the reference at the same seed,
  // across the bias range KOR actually uses (b = 1/(2t), t in [1, d]).
  for (const double b : {0.5, 0.1, 1.0 / 48.0, 1.0 / 720.0, 1.0 / 1440.0}) {
    util::Rng rng_a{42};
    util::Rng rng_b{42};
    for (int round = 0; round < 20; ++round) {
      const auto produced = BitVector::random_biased(720, b, rng_a);
      const auto expected = geometric_reference(720, b, rng_b);
      ASSERT_EQ(produced, expected) << "b=" << b << " round=" << round;
      // Identical RNG consumption, so the streams stay in lock-step.
      ASSERT_EQ(rng_a(), rng_b()) << "b=" << b << " round=" << round;
    }
  }
}

TEST(BitVector, ResetReusesTheWordBuffer) {
  BitVector v(512);
  v.set(100);
  const auto* words_before = v.words().data();
  v.reset(512);
  EXPECT_EQ(v.popcount(), 0);
  EXPECT_EQ(v.words().data(), words_before);  // no reallocation
  v.reset(64);  // shrinking reuses too
  EXPECT_EQ(v.words().data(), words_before);
  EXPECT_EQ(v.size(), 64);
}

TEST(BitVector, FillOnesMatchesBitwiseSets) {
  for (const auto [begin, count] : {std::pair{0, 0}, std::pair{0, 64},
                                    std::pair{3, 61}, std::pair{60, 10},
                                    std::pair{64, 130}, std::pair{5, 195}}) {
    BitVector fast(200);
    fast.fill_ones(begin, count);
    BitVector slow(200);
    for (int i = begin; i < begin + count; ++i) slow.set(i);
    EXPECT_EQ(fast, slow) << "begin=" << begin << " count=" << count;
  }
}

TEST(BitVector, EqualityComparesContent) {
  BitVector a(64);
  BitVector b(64);
  EXPECT_EQ(a, b);
  a.set(10);
  EXPECT_NE(a, b);
  b.set(10);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace infilter::nns

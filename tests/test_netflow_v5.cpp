// Tests for the NetFlow v5 wire codec (netflow/v5.h).

#include "netflow/v5.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace infilter::netflow {
namespace {

V5Record sample_record(std::uint32_t salt = 0) {
  V5Record r;
  r.src_ip = net::IPv4Address{10, 1, 2, static_cast<std::uint8_t>(3 + salt)};
  r.dst_ip = net::IPv4Address{100, 64, 9, 9};
  r.next_hop = net::IPv4Address{192, 0, 2, 1};
  r.input_if = 7;
  r.output_if = 9;
  r.packets = 42 + salt;
  r.bytes = 4242 + salt;
  r.first = 1000;
  r.last = 2500;
  r.src_port = 1024;
  r.dst_port = 80;
  r.ttl = 57;
  r.tcp_flags = tcpflags::kSyn | tcpflags::kAck;
  r.proto = static_cast<std::uint8_t>(IpProto::kTcp);
  r.tos = 0x10;
  r.src_as = 7001;
  r.dst_as = 7002;
  r.src_mask = 11;
  r.dst_mask = 16;
  return r;
}

TEST(V5Codec, HeaderAndRecordSizes) {
  const auto wire = encode(V5Header{}, std::vector<V5Record>{sample_record()});
  EXPECT_EQ(wire.size(), kV5HeaderBytes + kV5RecordBytes);
}

TEST(V5Codec, VersionFieldIsFive) {
  const auto wire = encode(V5Header{}, std::vector<V5Record>{sample_record()});
  EXPECT_EQ((wire[0] << 8) | wire[1], kV5Version);
}

TEST(V5Codec, RoundTripSingleRecord) {
  V5Header header;
  header.sys_uptime_ms = 123456;
  header.unix_secs = 1;
  header.unix_nsecs = 2;
  header.flow_sequence = 77;
  header.engine_type = 1;
  header.engine_id = 3;
  header.sampling_interval = 0;
  const auto original = sample_record();
  const auto wire = encode(header, std::vector<V5Record>{original});
  const auto decoded = decode(wire);
  ASSERT_TRUE(decoded.has_value()) << decoded.error().message;
  EXPECT_EQ(decoded->header.count, 1);
  EXPECT_EQ(decoded->header.sys_uptime_ms, header.sys_uptime_ms);
  EXPECT_EQ(decoded->header.flow_sequence, header.flow_sequence);
  EXPECT_EQ(decoded->header.engine_id, header.engine_id);
  ASSERT_EQ(decoded->records.size(), 1u);
  EXPECT_EQ(decoded->records.front(), original);
}

class V5RoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(V5RoundTrip, PreservesAllRecords) {
  const int count = GetParam();
  std::vector<V5Record> records;
  for (int i = 0; i < count; ++i) {
    records.push_back(sample_record(static_cast<std::uint32_t>(i)));
  }
  const auto wire = encode(V5Header{}, records);
  const auto decoded = decode(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->records, records);
}

INSTANTIATE_TEST_SUITE_P(RecordCounts, V5RoundTrip,
                         ::testing::Values(1, 2, 5, 15, 29, 30));

TEST(V5Codec, RandomizedRoundTrip) {
  util::Rng rng{99};
  for (int trial = 0; trial < 50; ++trial) {
    V5Record r;
    r.src_ip = net::IPv4Address{static_cast<std::uint32_t>(rng())};
    r.dst_ip = net::IPv4Address{static_cast<std::uint32_t>(rng())};
    r.next_hop = net::IPv4Address{static_cast<std::uint32_t>(rng())};
    r.input_if = static_cast<std::uint16_t>(rng());
    r.output_if = static_cast<std::uint16_t>(rng());
    r.packets = static_cast<std::uint32_t>(rng());
    r.bytes = static_cast<std::uint32_t>(rng());
    r.first = static_cast<std::uint32_t>(rng());
    r.last = static_cast<std::uint32_t>(rng());
    r.src_port = static_cast<std::uint16_t>(rng());
    r.dst_port = static_cast<std::uint16_t>(rng());
    r.ttl = static_cast<std::uint8_t>(rng());
    r.tcp_flags = static_cast<std::uint8_t>(rng());
    r.proto = static_cast<std::uint8_t>(rng());
    r.tos = static_cast<std::uint8_t>(rng());
    r.src_as = static_cast<std::uint16_t>(rng());
    r.dst_as = static_cast<std::uint16_t>(rng());
    r.src_mask = static_cast<std::uint8_t>(rng());
    r.dst_mask = static_cast<std::uint8_t>(rng());
    const auto decoded = decode(encode(V5Header{}, std::vector{r}));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->records.front(), r);
  }
}

// The observed TTL rides in record byte 36 -- the pad1 slot of the stock v5
// layout -- so a stock decoder still parses our datagrams (it reads the
// byte as padding) and a stock exporter yields ttl == 0 ("not observed").
TEST(V5Codec, TtlOccupiesThePadOneByte) {
  auto record = sample_record();
  record.ttl = 0xab;
  const auto wire = encode(V5Header{}, std::vector{record});
  EXPECT_EQ(wire[kV5HeaderBytes + 36], 0xab);

  auto zeroed = wire;
  zeroed[kV5HeaderBytes + 36] = 0;  // what a stock exporter emits
  const auto decoded = decode(zeroed);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->records.front().ttl, 0);
  auto expected = record;
  expected.ttl = 0;
  EXPECT_EQ(decoded->records.front(), expected);
}

TEST(V5Codec, DecodeRejectsShortBuffer) {
  const std::vector<std::uint8_t> tiny(10, 0);
  EXPECT_FALSE(decode(tiny).has_value());
}

TEST(V5Codec, DecodeRejectsWrongVersion) {
  auto wire = encode(V5Header{}, std::vector<V5Record>{sample_record()});
  wire[1] = 9;  // NetFlow v9
  const auto decoded = decode(wire);
  ASSERT_FALSE(decoded.has_value());
  EXPECT_NE(decoded.error().message.find("version"), std::string::npos);
}

TEST(V5Codec, DecodeRejectsTruncatedRecords) {
  auto wire = encode(V5Header{}, std::vector<V5Record>{sample_record(), sample_record(1)});
  wire.resize(wire.size() - 10);
  EXPECT_FALSE(decode(wire).has_value());
}

TEST(V5Codec, DecodeRejectsZeroCount) {
  auto wire = encode(V5Header{}, std::vector<V5Record>{sample_record()});
  wire[2] = 0;
  wire[3] = 0;
  EXPECT_FALSE(decode(wire).has_value());
}

TEST(V5Codec, DecodeRejectsCountBeyondThirty) {
  auto wire = encode(V5Header{}, std::vector<V5Record>{sample_record()});
  wire[3] = 31;
  EXPECT_FALSE(decode(wire).has_value());
}

TEST(V5Codec, DecodeRejectsTrailingGarbage) {
  auto wire = encode(V5Header{}, std::vector<V5Record>{sample_record()});
  wire.push_back(0);
  EXPECT_FALSE(decode(wire).has_value());
}

TEST(V5Codec, EncodeAllSplitsAtThirtyRecords) {
  std::vector<V5Record> records(75, sample_record());
  std::uint32_t sequence = 0;
  const auto datagrams = encode_all(records, 5000, sequence);
  ASSERT_EQ(datagrams.size(), 3u);
  EXPECT_EQ(sequence, 75u);

  std::uint32_t expected_sequence = 0;
  std::size_t total = 0;
  for (const auto& datagram : datagrams) {
    const auto decoded = decode(datagram);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->header.flow_sequence, expected_sequence);
    expected_sequence += static_cast<std::uint32_t>(decoded->records.size());
    total += decoded->records.size();
    EXPECT_LE(decoded->records.size(), kV5MaxRecords);
  }
  EXPECT_EQ(total, 75u);
}

TEST(V5Codec, EncodeAllContinuesSequenceAcrossCalls) {
  std::vector<V5Record> records(5, sample_record());
  std::uint32_t sequence = 0;
  (void)encode_all(records, 1000, sequence);
  const auto second = encode_all(records, 2000, sequence);
  const auto decoded = decode(second.front());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->header.flow_sequence, 5u);
  EXPECT_EQ(sequence, 10u);
}

TEST(V5Record, KeyExtractsFigureTenFields) {
  const auto r = sample_record();
  const FlowKey key = r.key();
  EXPECT_EQ(key.src_ip, r.src_ip);
  EXPECT_EQ(key.dst_ip, r.dst_ip);
  EXPECT_EQ(key.proto, r.proto);
  EXPECT_EQ(key.src_port, r.src_port);
  EXPECT_EQ(key.dst_port, r.dst_port);
  EXPECT_EQ(key.tos, r.tos);
  EXPECT_EQ(key.input_if, r.input_if);
}

TEST(V5Record, DurationIsLastMinusFirst) {
  const auto r = sample_record();
  EXPECT_EQ(r.duration_ms(), 1500u);
}

TEST(FlowKey, HashDistinguishesNearbyKeys) {
  const std::hash<FlowKey> h;
  FlowKey a = sample_record().key();
  FlowKey b = a;
  b.dst_port = 81;
  EXPECT_NE(h(a), h(b));
  FlowKey c = a;
  c.tos = 1;
  EXPECT_NE(h(a), h(c));
}

}  // namespace
}  // namespace infilter::netflow

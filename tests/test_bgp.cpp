// Tests for policy routing (routing/bgp.h): Gao-Rexford preferences,
// valley-free paths, link failures, and the ingress-peer extraction the
// InFilter hypothesis is about.

#include "routing/bgp.h"

#include <gtest/gtest.h>

namespace infilter::routing {
namespace {

TopologyConfig small_config() {
  TopologyConfig c;
  c.tier1_count = 3;
  c.tier2_count = 10;
  c.stub_count = 30;
  c.parallel_link_fraction = 0.3;
  return c;
}

TEST(RouteComputation, TargetRoutesToItself) {
  const auto topo = AsTopology::generate(small_config(), 1);
  const RouteComputation routes(topo, 5);
  EXPECT_EQ(routes.route(5).type, RouteType::kSelf);
  EXPECT_EQ(routes.route(5).length, 0);
  EXPECT_EQ(routes.ingress_peer(5), -1);
}

TEST(RouteComputation, AllAsesReachAllUpTargets) {
  const auto topo = AsTopology::generate(small_config(), 2);
  for (AsId target : {0, 7, 20, 40}) {
    const RouteComputation routes(topo, target);
    for (AsId from = 0; from < topo.as_count(); ++from) {
      EXPECT_NE(routes.route(from).type, RouteType::kNone)
          << from << " cannot reach " << target;
    }
  }
}

TEST(RouteComputation, PathsEndAtTargetAndStartAtSource) {
  const auto topo = AsTopology::generate(small_config(), 3);
  const AsId target = 12;
  const RouteComputation routes(topo, target);
  for (AsId from = 0; from < topo.as_count(); ++from) {
    if (from == target) continue;
    const auto path = routes.path(from);
    ASSERT_GE(path.size(), 2u) << from;
    EXPECT_EQ(path.front(), from);
    EXPECT_EQ(path.back(), target);
  }
}

TEST(RouteComputation, PathsFollowTopologyEdges) {
  const auto topo = AsTopology::generate(small_config(), 4);
  const RouteComputation routes(topo, 9);
  for (AsId from = 0; from < topo.as_count(); ++from) {
    const auto path = routes.path(from);
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      bool adjacent = false;
      for (const auto& nb : topo.neighbors(path[i])) {
        adjacent |= nb.as == path[i + 1];
      }
      EXPECT_TRUE(adjacent) << path[i] << "->" << path[i + 1];
    }
  }
}

TEST(RouteComputation, PathsAreValleyFree) {
  // Once a path goes peer or down (provider->customer), it may never go up
  // (customer->provider) or cross another peer link after going down.
  const auto topo = AsTopology::generate(small_config(), 5);
  auto relationship = [&topo](AsId from, AsId to) {
    for (const auto& nb : topo.neighbors(from)) {
      if (nb.as == to) return nb.relationship;
    }
    ADD_FAILURE() << "no edge " << from << "->" << to;
    return Relationship::kPeer;
  };
  for (AsId target : {0, 6, 25}) {
    const RouteComputation routes(topo, target);
    for (AsId from = 0; from < topo.as_count(); ++from) {
      const auto path = routes.path(from);
      // Phase: 0 = climbing (toward providers), 1 = peered, 2 = descending.
      int phase = 0;
      int peer_links = 0;
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        const auto rel = relationship(path[i], path[i + 1]);
        if (rel == Relationship::kProvider) {
          EXPECT_EQ(phase, 0) << "uphill after plateau/downhill, src " << from;
        } else if (rel == Relationship::kPeer) {
          EXPECT_LE(phase, 0) << "peer link after downhill, src " << from;
          phase = 1;
          ++peer_links;
        } else {
          phase = 2;
        }
      }
      EXPECT_LE(peer_links, 1) << "multiple peer links, src " << from;
    }
  }
}

TEST(RouteComputation, CustomerRoutePreferredOverPeerAndProvider) {
  const auto topo = AsTopology::generate(small_config(), 6);
  // For every AS with a customer route available, the selected route must
  // be a customer route (checked implicitly: selected type kCustomer means
  // next hop is a customer). Here we verify the selected next hop's
  // relationship matches the route type.
  const RouteComputation routes(topo, 15);
  for (AsId from = 0; from < topo.as_count(); ++from) {
    const auto& route = routes.route(from);
    if (route.type == RouteType::kSelf || route.type == RouteType::kNone) continue;
    Relationship expected = Relationship::kPeer;
    switch (route.type) {
      case RouteType::kCustomer: expected = Relationship::kCustomer; break;
      case RouteType::kPeer: expected = Relationship::kPeer; break;
      case RouteType::kProvider: expected = Relationship::kProvider; break;
      default: break;
    }
    bool ok = false;
    for (const auto& nb : topo.neighbors(from)) {
      if (nb.as == route.next_hop) ok = (nb.relationship == expected);
    }
    EXPECT_TRUE(ok) << "AS " << from << " route type vs neighbor relationship";
  }
}

TEST(RouteComputation, IngressPeerIsSecondToLastHop) {
  const auto topo = AsTopology::generate(small_config(), 7);
  const AsId target = 18;
  const RouteComputation routes(topo, target);
  for (AsId from = 0; from < topo.as_count(); ++from) {
    if (from == target) continue;
    const auto path = routes.path(from);
    ASSERT_GE(path.size(), 2u);
    EXPECT_EQ(routes.ingress_peer(from), path[path.size() - 2]);
    // The ingress peer must be a direct neighbor of the target.
    bool adjacent = false;
    for (const auto& nb : topo.neighbors(target)) {
      adjacent |= nb.as == routes.ingress_peer(from);
    }
    EXPECT_TRUE(adjacent);
  }
}

TEST(RouteComputation, DirectNeighborIngressesThroughItself) {
  const auto topo = AsTopology::generate(small_config(), 8);
  const AsId target = 20;
  const RouteComputation routes(topo, target);
  for (const auto& nb : topo.neighbors(target)) {
    // A neighbor that routes directly to the target is its own peer AS.
    if (routes.route(nb.as).next_hop == target) {
      EXPECT_EQ(routes.ingress_peer(nb.as), nb.as);
    }
  }
}

TEST(RouteComputation, DownLinkDivertsOrDisconnects) {
  const auto topo = AsTopology::generate(small_config(), 9);
  const AsId target = 33;  // a stub
  const RouteComputation base(topo, target);
  // Fail the link the first reachable source uses to enter the target.
  AsId source = -1;
  for (AsId from = 0; from < topo.as_count(); ++from) {
    if (from != target && base.ingress_link(from) >= 0) {
      source = from;
      break;
    }
  }
  ASSERT_GE(source, 0);
  const int link = base.ingress_link(source);
  std::vector<bool> down(topo.links().size(), false);
  down[static_cast<std::size_t>(link)] = true;
  const RouteComputation failed(topo, target, down);
  // The source either found another ingress or lost reachability; it must
  // not still claim the failed link.
  EXPECT_NE(failed.ingress_link(source), link);
}

TEST(RouteComputation, DeterministicTieBreaks) {
  const auto topo = AsTopology::generate(small_config(), 10);
  const RouteComputation a(topo, 11);
  const RouteComputation b(topo, 11);
  for (AsId from = 0; from < topo.as_count(); ++from) {
    EXPECT_EQ(a.route(from).next_hop, b.route(from).next_hop);
    EXPECT_EQ(a.route(from).type, b.route(from).type);
  }
}

TEST(RouteComputation, PathLengthMatchesRouteLength) {
  const auto topo = AsTopology::generate(small_config(), 12);
  const RouteComputation routes(topo, 4);
  for (AsId from = 0; from < topo.as_count(); ++from) {
    const auto path = routes.path(from);
    if (path.empty()) continue;
    EXPECT_EQ(static_cast<int>(path.size()) - 1, routes.route(from).length)
        << "AS " << from;
  }
}

TEST(LinkFailureProcess, StartsAllUp) {
  LinkFailureProcess process(10, 0.1, 0.5, 1);
  for (const bool down : process.down()) EXPECT_FALSE(down);
}

TEST(LinkFailureProcess, ZeroFailRateNeverFails) {
  LinkFailureProcess process(10, 0.0, 0.5, 2);
  for (int step = 0; step < 50; ++step) {
    for (const bool down : process.step()) EXPECT_FALSE(down);
  }
}

TEST(LinkFailureProcess, FailuresOccurAndRepair) {
  LinkFailureProcess process(200, 0.05, 0.5, 3);
  int saw_down = 0;
  for (int step = 0; step < 50; ++step) {
    const auto& down = process.step();
    for (const bool d : down) saw_down += d ? 1 : 0;
  }
  EXPECT_GT(saw_down, 0);
  // With repair 10x fail, steady-state down fraction ~ 9%; after many
  // steps not everything is down.
  int final_down = 0;
  for (const bool d : process.down()) final_down += d ? 1 : 0;
  EXPECT_LT(final_down, 100);
}

}  // namespace
}  // namespace infilter::routing

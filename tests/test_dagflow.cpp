// Tests for the Dagflow replay tool (dagflow/dagflow.h).

#include "dagflow/dagflow.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "flowtools/capture.h"
#include "traffic/normal.h"

namespace infilter::dagflow {
namespace {

TEST(AddressPool, DrawsStayInsidePrefixes) {
  const auto pool = AddressPool::from_subblocks(
      {*net::SubBlock::parse("1a"), *net::SubBlock::parse("5c")});
  util::Rng rng{1};
  const auto p1 = net::SubBlock::parse("1a")->prefix();
  const auto p2 = net::SubBlock::parse("5c")->prefix();
  for (int i = 0; i < 2000; ++i) {
    const auto address = pool.draw(rng);
    EXPECT_TRUE(p1.contains(address) || p2.contains(address));
  }
}

TEST(AddressPool, WeightsControlComponentFrequency) {
  // "25% of the source IP addresses in the 192.4/16 subnet, 25% in the
  // 214.96/16 subnet and the remaining 50% in the 145.25/16 subnet."
  const auto a = *net::Prefix::parse("192.4.0.0/16");
  const auto b = *net::Prefix::parse("214.96.0.0/16");
  const auto c = *net::Prefix::parse("145.25.0.0/16");
  const AddressPool pool({{{a}, 0.25}, {{b}, 0.25}, {{c}, 0.5}});
  util::Rng rng{2};
  int in_a = 0, in_b = 0, in_c = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto address = pool.draw(rng);
    if (a.contains(address)) ++in_a;
    else if (b.contains(address)) ++in_b;
    else if (c.contains(address)) ++in_c;
    else FAIL() << address.to_string() << " outside all components";
  }
  EXPECT_NEAR(in_a / static_cast<double>(n), 0.25, 0.02);
  EXPECT_NEAR(in_b / static_cast<double>(n), 0.25, 0.02);
  EXPECT_NEAR(in_c / static_cast<double>(n), 0.50, 0.02);
}

TEST(AddressPool, FromAllocationCoversNormalAndChangeSets) {
  const auto alloc = make_allocation(10, 100, 2, 0);
  const auto pool = AddressPool::from_allocation(alloc[0]);
  util::Rng rng{3};
  bool saw_foreign = false;
  for (int i = 0; i < 30000; ++i) {
    const auto address = pool.draw(rng);
    const auto block = net::SubBlock::containing(address);
    ASSERT_TRUE(block.has_value());
    const bool own = alloc[0].eia_range.contains(*block);
    bool foreign = false;
    for (const auto& b : alloc[0].change_set) foreign |= (b == *block);
    EXPECT_TRUE(own || foreign) << address.to_string();
    saw_foreign |= foreign;
  }
  // 2 of 100 blocks are foreign; 30k draws hit them with near certainty.
  EXPECT_TRUE(saw_foreign);
}

TEST(Dagflow, ReplayRewritesSourcesAndPreservesShape) {
  traffic::Trace trace;
  traffic::TraceFlow flow;
  flow.start = 100;
  flow.duration_ms = 50;
  flow.packets = 7;
  flow.bytes = 777;
  flow.proto = 6;
  flow.src_port = 1234;
  flow.dst_port = 80;
  flow.tcp_flags = 0x1b;
  flow.src_ip = net::IPv4Address{9, 9, 9, 9};
  flow.dst_ip = net::IPv4Address{100, 64, 0, 5};
  flow.attack = true;
  flow.attack_kind = traffic::AttackKind::kSynFlood;
  trace.flows.push_back(flow);

  const auto block = *net::SubBlock::parse("7b");
  Dagflow replayer(DagflowConfig{.netflow_port = 9004},
                   AddressPool::from_subblocks({block}), 7);
  const auto labeled = replayer.replay(trace);
  ASSERT_EQ(labeled.size(), 1u);
  const auto& out = labeled.front();
  EXPECT_TRUE(block.prefix().contains(out.record.src_ip));  // rewritten
  EXPECT_EQ(out.record.dst_ip, flow.dst_ip);
  EXPECT_EQ(out.record.packets, 7u);
  EXPECT_EQ(out.record.bytes, 777u);
  EXPECT_EQ(out.record.first, 100u);
  EXPECT_EQ(out.record.last, 150u);
  EXPECT_EQ(out.record.src_port, 1234);
  EXPECT_EQ(out.record.dst_port, 80);
  EXPECT_EQ(out.record.tcp_flags, 0x1b);
  EXPECT_EQ(out.arrival_port, 9004);
  EXPECT_TRUE(out.attack);
  EXPECT_EQ(out.attack_kind, traffic::AttackKind::kSynFlood);
}

TEST(Dagflow, SetPoolSwitchesAddressSpace) {
  traffic::NormalTrafficModel model;
  util::Rng rng{4};
  const auto trace = model.generate(200, 0, rng);

  const auto block1 = *net::SubBlock::parse("1a");
  const auto block2 = *net::SubBlock::parse("99a");
  Dagflow replayer(DagflowConfig{}, AddressPool::from_subblocks({block1}), 8);
  const auto first = replayer.replay(trace);
  replayer.set_pool(AddressPool::from_subblocks({block2}));
  const auto second = replayer.replay(trace);
  for (const auto& f : first) EXPECT_TRUE(block1.prefix().contains(f.record.src_ip));
  for (const auto& f : second) EXPECT_TRUE(block2.prefix().contains(f.record.src_ip));
}

TEST(Dagflow, ExportDatagramsRoundTripThroughCapture) {
  traffic::NormalTrafficModel model;
  util::Rng rng{5};
  const auto trace = model.generate(95, 0, rng);
  Dagflow replayer(DagflowConfig{.netflow_port = 9007, .engine_id = 2},
                   AddressPool::from_subblocks({*net::SubBlock::parse("3c")}), 9);
  const auto labeled = replayer.replay(trace);
  const auto datagrams = replayer.export_datagrams(labeled, 60000);
  // 95 records -> 4 datagrams (30+30+30+5).
  ASSERT_EQ(datagrams.size(), 4u);

  flowtools::FlowCapture capture;
  for (const auto& datagram : datagrams) {
    ASSERT_TRUE(capture.ingest(datagram, replayer.netflow_port()).has_value());
  }
  ASSERT_EQ(capture.flows().size(), labeled.size());
  EXPECT_EQ(capture.sequence_gaps(), 0u);
  for (std::size_t i = 0; i < labeled.size(); ++i) {
    EXPECT_EQ(capture.flows()[i].record, labeled[i].record) << i;
    EXPECT_EQ(capture.flows()[i].arrival_port, 9007);
  }
}

TEST(Dagflow, SequenceContinuesAcrossExportCalls) {
  traffic::NormalTrafficModel model;
  util::Rng rng{6};
  const auto trace = model.generate(10, 0, rng);
  Dagflow replayer(DagflowConfig{},
                   AddressPool::from_subblocks({*net::SubBlock::parse("3c")}), 10);
  const auto labeled = replayer.replay(trace);
  const auto first = replayer.export_datagrams(labeled, 1000);
  const auto second = replayer.export_datagrams(labeled, 2000);
  const auto decoded = netflow::decode(second.front());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->header.flow_sequence, 10u);
}

TEST(Dagflow, SamplingDropsShortFlowsKeepsLong) {
  traffic::Trace trace;
  for (int i = 0; i < 400; ++i) {
    traffic::TraceFlow flow;
    flow.start = static_cast<util::TimeMs>(i);
    flow.packets = (i % 2 == 0) ? 1 : 5000;  // half single-packet, half huge
    flow.bytes = flow.packets * 100;
    flow.proto = 17;
    flow.dst_ip = net::IPv4Address{100, 64, 0, 1};
    trace.flows.push_back(flow);
  }
  DagflowConfig config;
  config.sampling_interval = 100;
  Dagflow replayer(config, AddressPool::from_subblocks({*net::SubBlock::parse("3c")}),
                   21);
  const auto labeled = replayer.replay(trace);
  int singles = 0;
  int huge = 0;
  for (const auto& flow : labeled) {
    if (flow.record.bytes / std::max(1u, flow.record.packets) != 100) continue;
    (flow.record.packets <= 100 ? singles : huge) += 1;
  }
  // Nearly every 5000-packet flow survives 1-in-100 sampling; roughly 1%
  // of single-packet flows do.
  EXPECT_GE(huge, 190);
  EXPECT_LE(singles, 20);
}

TEST(Dagflow, SamplingScalesCountsUnbiased) {
  traffic::Trace trace;
  traffic::TraceFlow flow;
  flow.packets = 5000;
  flow.bytes = 500000;
  flow.proto = 6;
  flow.dst_ip = net::IPv4Address{100, 64, 0, 1};
  trace.flows.push_back(flow);
  DagflowConfig config;
  config.sampling_interval = 100;
  Dagflow replayer(config, AddressPool::from_subblocks({*net::SubBlock::parse("3c")}),
                   22);
  const auto labeled = replayer.replay(trace);
  ASSERT_EQ(labeled.size(), 1u);
  // 5000 packets at 1-in-100: ~50 sampled, scaled back to ~5000.
  EXPECT_EQ(labeled.front().record.packets, 5000u);
  EXPECT_EQ(labeled.front().record.bytes, 500000u);
}

TEST(Dagflow, SamplingQuantizesTinyFlowsUpToInterval) {
  traffic::Trace trace;
  for (int i = 0; i < 500; ++i) {
    traffic::TraceFlow flow;
    flow.packets = 1;
    flow.bytes = 404;
    flow.proto = 17;
    flow.dst_port = 1434;
    flow.dst_ip = net::IPv4Address{100, 64, 0, 1};
    trace.flows.push_back(flow);
  }
  DagflowConfig config;
  config.sampling_interval = 50;
  Dagflow replayer(config, AddressPool::from_subblocks({*net::SubBlock::parse("3c")}),
                   23);
  const auto labeled = replayer.replay(trace);
  ASSERT_GT(labeled.size(), 0u);
  // A surviving single-packet flow is reported as ~interval packets (the
  // exporter cannot know it was really one packet).
  for (const auto& flow : labeled) {
    EXPECT_EQ(flow.record.packets, 50u);
    EXPECT_EQ(flow.record.bytes, 404u * 50u);
  }
}

TEST(Dagflow, SamplingIntervalOneIsIdentity) {
  traffic::NormalTrafficModel model;
  util::Rng rng{24};
  const auto trace = model.generate(100, 0, rng);
  DagflowConfig config;
  config.sampling_interval = 1;
  Dagflow replayer(config, AddressPool::from_subblocks({*net::SubBlock::parse("3c")}),
                   25);
  EXPECT_EQ(replayer.replay(trace).size(), trace.flows.size());
}

TEST(Dagflow, DeterministicForSeed) {
  traffic::NormalTrafficModel model;
  util::Rng rng1{7};
  util::Rng rng2{7};
  const auto trace1 = model.generate(50, 0, rng1);
  const auto trace2 = model.generate(50, 0, rng2);
  Dagflow a(DagflowConfig{}, AddressPool::from_subblocks({*net::SubBlock::parse("5a")}),
            11);
  Dagflow b(DagflowConfig{}, AddressPool::from_subblocks({*net::SubBlock::parse("5a")}),
            11);
  const auto la = a.replay(trace1);
  const auto lb = b.replay(trace2);
  ASSERT_EQ(la.size(), lb.size());
  for (std::size_t i = 0; i < la.size(); ++i) {
    EXPECT_EQ(la[i].record, lb[i].record);
  }
}

}  // namespace
}  // namespace infilter::dagflow

// Tests for the Section 6 testbed harness (sim/testbed.h).

#include "sim/testbed.h"

#include <gtest/gtest.h>

namespace infilter::sim {
namespace {

ExperimentConfig small_config() {
  ExperimentConfig c;
  c.normal_flows_per_source = 1500;
  c.training_flows = 600;
  c.attack_volume = 0.04;
  c.engine.cluster.bits_per_feature = 48;  // d = 240: fast tests
  c.seed = 21;
  return c;
}

TEST(Testbed, BasicModeDetectsEveryInstance) {
  ExperimentConfig config = small_config();
  config.engine.mode = core::EngineMode::kBasic;
  const auto result = run_experiment(config);
  // Every attack flow is spoofed, so BI flags every instance
  // ("the detection rate stays flat at almost 100% for the Basic InFilter").
  EXPECT_EQ(result.attack_instances, traffic::kStandardAttackKindCount);
  EXPECT_EQ(result.detected_instances, result.attack_instances);
  EXPECT_EQ(result.detected_attack_flows, result.attack_flows);
  EXPECT_EQ(result.alerts_scan, 0u);
  EXPECT_EQ(result.alerts_nns, 0u);
}

TEST(Testbed, EnhancedModeDetectsMostInstances) {
  ExperimentConfig config = small_config();
  const auto result = run_experiment(config);
  EXPECT_EQ(result.attack_instances, traffic::kStandardAttackKindCount);
  // The test config is tiny (attack intensity ~0.1), so scan attacks of a
  // dozen flows are genuinely hard; at paper scale detection is ~83%.
  EXPECT_GE(result.detection_rate(), 0.5);
  // EI trades some detection for false-positive reduction; it must not be
  // perfect on the stealthy attacks.
  EXPECT_GT(result.alerts_scan + result.alerts_nns, 0u);
  EXPECT_EQ(result.alerts_eia, 0u);  // enhanced mode never alerts at EIA stage
}

TEST(Testbed, NoDriftNoRouteChangeNoCompanionsMeansNoFalsePositives) {
  ExperimentConfig config = small_config();
  config.ingress_drift = 0;
  config.companion_fraction = 0;
  config.engine.mode = core::EngineMode::kBasic;
  const auto result = run_experiment(config);
  EXPECT_EQ(result.false_positives, 0u);
}

TEST(Testbed, DriftCreatesBoundedFalsePositivesUnderBasic) {
  ExperimentConfig config = small_config();
  config.ingress_drift = 0.02;
  config.companion_fraction = 0;
  config.engine.mode = core::EngineMode::kBasic;
  const auto result = run_experiment(config);
  EXPECT_GT(result.false_positives, 0u);
  // FP rate is at most the drift level (auto-learning can only reduce it).
  EXPECT_LE(result.false_positive_rate(), 0.03);
}

TEST(Testbed, EnhancedReducesFalsePositivesVersusBasic) {
  ExperimentConfig config = small_config();
  config.route_change_blocks = 4;
  config.engine.mode = core::EngineMode::kBasic;
  const auto basic = run_experiment(config);
  config.engine.mode = core::EngineMode::kEnhanced;
  const auto enhanced = run_experiment(config);
  EXPECT_LT(enhanced.false_positive_rate(), basic.false_positive_rate());
}

TEST(Testbed, RouteChangeRaisesFalsePositives) {
  ExperimentConfig config = small_config();
  config.engine.mode = core::EngineMode::kBasic;
  config.ingress_drift = 0;
  config.companion_fraction = 0;
  config.route_change_blocks = 0;
  const auto calm = run_experiment(config);
  config.route_change_blocks = 8;
  const auto churned = run_experiment(config);
  EXPECT_GT(churned.false_positive_rate(), calm.false_positive_rate());
}

TEST(Testbed, StressSpreadsAttacksAcrossAllIngresses) {
  ExperimentConfig config = small_config();
  config.normal_flows_per_source = 800;
  config.attacked_ingresses = config.sources;
  const auto result = run_experiment(config);
  EXPECT_EQ(result.attack_instances,
            traffic::kStandardAttackKindCount * config.sources);
  EXPECT_GT(result.attack_flows,
            10 * 0.8 * config.attack_volume * config.normal_flows_per_source);
}

TEST(Testbed, AttackVolumeScalesAttackFlows) {
  ExperimentConfig config = small_config();
  config.attack_volume = 0.02;
  const auto low = run_experiment(config);
  config.attack_volume = 0.08;
  const auto high = run_experiment(config);
  EXPECT_GT(high.attack_flows, 3 * low.attack_flows);
}

TEST(Testbed, DeterministicForSeed) {
  const auto a = run_experiment(small_config());
  const auto b = run_experiment(small_config());
  EXPECT_EQ(a.detected_instances, b.detected_instances);
  EXPECT_EQ(a.false_positives, b.false_positives);
  EXPECT_EQ(a.attack_flows, b.attack_flows);
}

TEST(Testbed, PerKindAccountingSumsToTotals) {
  const auto result = run_experiment(small_config());
  int instances = 0;
  int detected = 0;
  for (const auto& [total, hit] : result.per_kind) {
    instances += total;
    detected += hit;
    EXPECT_LE(hit, total);
  }
  EXPECT_EQ(instances, result.attack_instances);
  EXPECT_EQ(detected, result.detected_instances);
}

TEST(Testbed, ClusterCacheReusesTraining) {
  ExperimentConfig config = small_config();
  ClusterCache cache(config);
  const auto first = cache.get(99);
  const auto second = cache.get(99);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_NE(cache.get(100).get(), first.get());
}

TEST(Testbed, RunAveragedAggregatesRuns) {
  ExperimentConfig config = small_config();
  config.normal_flows_per_source = 600;
  config.training_flows = 400;
  ClusterCache cache(config);
  const auto averaged = run_averaged(config, 2, &cache);
  EXPECT_EQ(averaged.runs, 2);
  EXPECT_GE(averaged.detection_rate, 0.0);
  EXPECT_LE(averaged.detection_rate, 1.0);
  EXPECT_GE(averaged.false_positive_rate, 0.0);
}

// -- TTL scenario (src/hopcount fusion) --

TEST(Testbed, TtlScenarioLaunchesTtlKindsAndStampsTtls) {
  ExperimentConfig config = small_config();
  config.ttl_scenario = true;
  const auto stream = generate_stream(config);
  EXPECT_EQ(stream.instances.size(),
            static_cast<std::size_t>(traffic::kAttackKindCount));
  for (const auto& flow : stream.flows) EXPECT_GT(flow.record.ttl, 0);

  config.ttl_scenario = false;
  const auto plain = generate_stream(config);
  EXPECT_EQ(plain.instances.size(),
            static_cast<std::size_t>(traffic::kStandardAttackKindCount));
  for (const auto& flow : plain.flows) EXPECT_EQ(flow.record.ttl, 0);
}

// Stamping is pure hashing: the standard part of the TTL stream must be
// field-for-field the plain stream (only ttl differs, plus the appended
// TTL-kind instances). This is what makes EIA-only vs fused runs of the
// same seed a controlled comparison.
TEST(Testbed, TtlStampingLeavesStandardStreamUnchanged) {
  ExperimentConfig config = small_config();
  const auto plain = generate_stream(config);
  config.ttl_scenario = true;
  const auto stamped = generate_stream(config);
  ASSERT_GE(stamped.flows.size(), plain.flows.size());
  std::size_t matched = 0;
  for (std::size_t i = 0, j = 0; i < plain.flows.size() && j < stamped.flows.size();
       ++j) {
    // The TTL streams interleave extra in-EIA attack flows; skip them.
    auto expect = plain.flows[i].record;
    auto got = stamped.flows[j].record;
    expect.ttl = 0;
    got.ttl = 0;
    if (expect == got && plain.flows[i].attack == stamped.flows[j].attack) {
      ++i;
      ++matched;
    }
  }
  EXPECT_EQ(matched, plain.flows.size());
}

// The headline scenario: forged-but-valid sources sail through the EIA
// check (SMap's observation), so EIA-only detection of the in-EIA kinds is
// exactly zero; fusing the TTL witness catches them.
TEST(Testbed, TtlFusionCatchesInEiaSpoofsThatEiaAloneCannotSee) {
  ExperimentConfig config = small_config();
  config.ttl_scenario = true;
  const auto eia_only = run_experiment(config);
  config.engine.use_hopcount = true;
  const auto fused = run_experiment(config);

  const auto& kind_of = [](const ExperimentResult& r, traffic::AttackKind k) {
    return r.per_kind[static_cast<std::size_t>(k)];
  };
  // EIA-only: the in-EIA instances are launched but invisible.
  EXPECT_EQ(eia_only.attack_instances, traffic::kAttackKindCount);
  EXPECT_EQ(kind_of(eia_only, traffic::AttackKind::kInEiaSpoofFlood).second, 0);
  EXPECT_EQ(eia_only.alerts_fused, 0u);
  // Fused: the plain in-EIA spoof flood is caught.
  EXPECT_EQ(kind_of(fused, traffic::AttackKind::kInEiaSpoofFlood).second, 1);
  // Out-of-EIA spoofed kinds carry the attacker's path too: EIA miss + TTL
  // miss promotes them to high-confidence fused alerts.
  EXPECT_GT(fused.alerts_fused, 0u);
  EXPECT_GE(fused.detected_instances, eia_only.detected_instances);
  // Benign false-suspect budget: honest traffic classifies consistent (or
  // unknown while ranges warm up), so the TTL stage adds at most a sliver
  // of benign suspects on top of the EIA-mismatch baseline.
  EXPECT_LE(fused.benign_suspect_rate(), eia_only.benign_suspect_rate() + 0.01);
  // And the final false-positive rate must not regress.
  EXPECT_LE(fused.false_positive_rate(), eia_only.false_positive_rate() + 0.005);
}

TEST(Testbed, TrainClustersCoversAllSubclusters) {
  const auto clusters = train_clusters(small_config());
  ASSERT_NE(clusters, nullptr);
  std::size_t total = 0;
  for (int c = 0; c < core::kSubclusterCount; ++c) {
    total += clusters->training_size(static_cast<core::Subcluster>(c));
  }
  EXPECT_EQ(total, small_config().training_flows);
}

}  // namespace
}  // namespace infilter::sim

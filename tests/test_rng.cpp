// Tests for the deterministic RNG (util/rng.h).

#include "util/rng.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

namespace infilter::util {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b()) ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(Rng, ForkedStreamsAreIndependentButDeterministic) {
  Rng parent1{7};
  Rng parent2{7};
  Rng child1 = parent1.fork(5);
  Rng child2 = parent2.fork(5);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(child1(), child2());
}

TEST(Rng, BelowStaysInBounds) {
  Rng rng{3};
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng{4};
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeIsInclusive) {
  Rng rng{5};
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInHalfOpenUnitInterval) {
  Rng rng{6};
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng{8};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceFrequencyMatchesProbability) {
  Rng rng{9};
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng{10};
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.exponential(5.0);
    ASSERT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 20000.0, 5.0, 0.25);
}

TEST(Rng, BoundedParetoStaysInBounds) {
  Rng rng{11};
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.bounded_pareto(1.2, 2.0, 1000.0);
    EXPECT_GE(v, 2.0 - 1e-9);
    EXPECT_LE(v, 1000.0 + 1e-9);
  }
}

TEST(Rng, BoundedParetoIsHeavyTailedTowardLow) {
  // For alpha > 0 the mass concentrates near the lower bound.
  Rng rng{12};
  int below_ten = 0;
  for (int i = 0; i < 5000; ++i) {
    below_ten += rng.bounded_pareto(1.2, 2.0, 1000.0) < 10.0 ? 1 : 0;
  }
  EXPECT_GT(below_ten, 3000);
}

TEST(Rng, PickChoosesAllElements) {
  Rng rng{13};
  const std::array<int, 4> items{10, 20, 30, 40};
  std::array<int, 4> counts{};
  for (int i = 0; i < 4000; ++i) {
    const int v = rng.pick(std::span<const int>{items});
    counts[static_cast<std::size_t>(v / 10 - 1)] += 1;
  }
  for (const int c : counts) EXPECT_GT(c, 700);
}

TEST(SplitMix64, KnownFirstOutputsDiffer) {
  SplitMix64 a{0};
  SplitMix64 b{1};
  EXPECT_NE(a.next(), b.next());
}

}  // namespace
}  // namespace infilter::util

// Tests for the KOR approximate NNS structure (nns/kor.h).

#include "nns/kor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <tuple>

namespace infilter::nns {
namespace {

BitVector unary_point(int dimension, int ones) {
  BitVector v(dimension);
  for (int i = 0; i < ones; ++i) v.set(i);
  return v;
}

TEST(HammingBall, RadiusOneIsJustCenter) {
  const auto ball = hamming_ball(0b1010, 12, 1);
  ASSERT_EQ(ball.size(), 1u);
  EXPECT_EQ(ball.front(), 0b1010u);
}

TEST(HammingBall, SizesMatchBinomialSums) {
  // radius r includes all z with HD < r: sum_{k<r} C(m2, k).
  EXPECT_EQ(hamming_ball(0, 12, 2).size(), 1u + 12u);
  EXPECT_EQ(hamming_ball(0, 12, 3).size(), 1u + 12u + 66u);
  EXPECT_EQ(hamming_ball(0, 12, 4).size(), 1u + 12u + 66u + 220u);
}

TEST(HammingBall, AllMembersWithinRadius) {
  const std::uint32_t center = 0xA5A;
  for (const auto z : hamming_ball(center, 12, 3)) {
    EXPECT_LT(std::popcount(center ^ z), 3);
    EXPECT_LT(z, 1u << 12);
  }
}

TEST(HammingBall, MembersAreDistinct) {
  auto ball = hamming_ball(0x3F, 12, 4);
  std::sort(ball.begin(), ball.end());
  EXPECT_EQ(std::adjacent_find(ball.begin(), ball.end()), ball.end());
}

TEST(ExactNns, FindsTrueNearestNeighbor) {
  std::vector<BitVector> training{unary_point(64, 10), unary_point(64, 30),
                                  unary_point(64, 50)};
  ExactNns index(training);
  util::Rng rng{1};
  const auto match = index.search(unary_point(64, 28), rng);
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->index, 1);
  EXPECT_EQ(match->distance, 2);
}

TEST(ExactNns, EmptyTrainingReturnsNothing) {
  ExactNns index(std::vector<BitVector>{});
  util::Rng rng{1};
  EXPECT_FALSE(index.search(unary_point(64, 5), rng).has_value());
}

TEST(ExactNns, ExactMatchHasZeroDistance) {
  std::vector<BitVector> training{unary_point(64, 17)};
  ExactNns index(training);
  util::Rng rng{1};
  const auto match = index.search(unary_point(64, 17), rng);
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->distance, 0);
}

KorParams test_params(std::uint64_t seed = 11) {
  KorParams p;
  p.m1 = 1;
  p.m2 = 12;
  p.m3 = 3;
  p.seed = seed;
  return p;
}

TEST(KorNns, EmptyTrainingReturnsNothing) {
  KorNns index(std::vector<BitVector>{}, test_params());
  util::Rng rng{1};
  EXPECT_FALSE(index.search(unary_point(64, 5), rng).has_value());
}

TEST(KorNns, ReturnsRealTrainingFlowWithTrueDistance) {
  std::vector<BitVector> training;
  for (int ones = 0; ones <= 120; ones += 10) {
    training.push_back(unary_point(120, ones));
  }
  KorNns index(training, test_params());
  util::Rng rng{2};
  const auto query = unary_point(120, 42);
  const auto match = index.search(query, rng);
  ASSERT_TRUE(match.has_value());
  ASSERT_GE(match->index, 0);
  ASSERT_LT(static_cast<std::size_t>(match->index), training.size());
  EXPECT_EQ(match->distance,
            query.hamming_distance(index.training_flow(match->index)));
}

TEST(KorNns, FindsExactDuplicateAtSmallDistance) {
  // A query identical to a training flow should land very close: the
  // smallest scales' tables contain the flow under its own trace.
  std::vector<BitVector> training;
  for (int ones = 0; ones <= 200; ones += 25) {
    training.push_back(unary_point(200, ones));
  }
  KorNns index(training, test_params());
  util::Rng rng{3};
  const auto match = index.search(unary_point(200, 75), rng);
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->distance, 0);
}

TEST(KorNns, ApproximationQualityAgainstExact) {
  // On clustered unary data the KOR answer should usually be within a
  // small factor of the exact nearest distance -- and, critically, it must
  // separate near-cluster queries from far-outlier queries.
  util::Rng data_rng{5};
  std::vector<BitVector> training;
  const int d = 240;
  for (int i = 0; i < 60; ++i) {
    // Cluster around 60 ones with small jitter.
    training.push_back(
        unary_point(d, 55 + static_cast<int>(data_rng.below(11))));
  }
  KorNns kor(training, test_params());
  ExactNns exact(training);
  util::Rng rng{6};

  // Near query.
  const auto near_kor = kor.search(unary_point(d, 62), rng);
  const auto near_exact = exact.search(unary_point(d, 62), rng);
  ASSERT_TRUE(near_kor.has_value());
  ASSERT_TRUE(near_exact.has_value());
  EXPECT_LE(near_kor->distance, near_exact->distance + 24);

  // Far outlier (all 240 ones -- 175+ away from the cluster).
  const auto far_kor = kor.search(unary_point(d, 240), rng);
  if (far_kor.has_value()) {
    EXPECT_GT(far_kor->distance, 100);
  }
}

TEST(KorNns, DistancesNeverUnderestimateTruth) {
  // The reported distance is computed against a real training flow, so it
  // can never be *below* the exact nearest-neighbor distance.
  util::Rng data_rng{7};
  std::vector<BitVector> training;
  for (int i = 0; i < 40; ++i) {
    training.push_back(unary_point(180, static_cast<int>(data_rng.below(181))));
  }
  KorNns kor(training, test_params());
  ExactNns exact(training);
  util::Rng rng{8};
  for (int q = 0; q <= 180; q += 17) {
    const auto query = unary_point(180, q);
    const auto approx = kor.search(query, rng);
    const auto truth = exact.search(query, rng);
    ASSERT_TRUE(truth.has_value());
    if (approx.has_value()) {
      EXPECT_GE(approx->distance, truth->distance);
    }
  }
}

TEST(KorNns, DeterministicForFixedSeeds) {
  std::vector<BitVector> training;
  for (int ones = 0; ones <= 100; ones += 5) {
    training.push_back(unary_point(100, ones));
  }
  KorNns a(training, test_params(42));
  KorNns b(training, test_params(42));
  util::Rng rng_a{9};
  util::Rng rng_b{9};
  for (int q = 0; q <= 100; q += 7) {
    const auto ma = a.search(unary_point(100, q), rng_a);
    const auto mb = b.search(unary_point(100, q), rng_b);
    ASSERT_EQ(ma.has_value(), mb.has_value());
    if (ma.has_value()) {
      EXPECT_EQ(ma->index, mb->index);
      EXPECT_EQ(ma->distance, mb->distance);
    }
  }
}

TEST(KorNns, SearchBatchMatchesSearchBitForBit) {
  // The level-synchronous batch probe promises out[i] ==
  // search(queries[i], rngs[i]) including RNG consumption, across table
  // counts (m1 > 1 draws a random table per binary-search round).
  for (const int m1 : {1, 3}) {
    util::Rng data_rng{13};
    std::vector<BitVector> training;
    for (int i = 0; i < 50; ++i) {
      training.push_back(unary_point(200, static_cast<int>(data_rng.below(201))));
    }
    KorParams params = test_params();
    params.m1 = m1;
    KorNns index(training, params);

    std::vector<BitVector> queries;
    for (int q = 0; q <= 200; q += 3) queries.push_back(unary_point(200, q));
    std::vector<util::Rng> serial_rngs;
    std::vector<util::Rng> batch_rngs;
    for (std::size_t i = 0; i < queries.size(); ++i) {
      serial_rngs.emplace_back(1000 + 7 * i);
      batch_rngs.emplace_back(1000 + 7 * i);
    }

    std::vector<std::optional<NnsMatch>> batched(queries.size());
    NnsBatchScratch scratch;
    index.search_batch(queries, batched, batch_rngs, scratch);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const auto serial = index.search(queries[i], serial_rngs[i]);
      ASSERT_EQ(serial.has_value(), batched[i].has_value()) << "query " << i;
      if (serial.has_value()) {
        EXPECT_EQ(serial->index, batched[i]->index) << "query " << i;
        EXPECT_EQ(serial->distance, batched[i]->distance) << "query " << i;
      }
      // Both paths must leave the per-query RNG in the same state.
      EXPECT_EQ(serial_rngs[i](), batch_rngs[i]()) << "query " << i;
    }
  }
}

TEST(KorNns, SearchBatchReusesScratchAcrossBatches) {
  std::vector<BitVector> training;
  for (int ones = 0; ones <= 120; ones += 10) {
    training.push_back(unary_point(120, ones));
  }
  KorNns index(training, test_params());
  NnsBatchScratch scratch;
  std::vector<BitVector> queries{unary_point(120, 14), unary_point(120, 77)};
  std::vector<std::optional<NnsMatch>> out(queries.size());
  for (int round = 0; round < 3; ++round) {
    std::vector<util::Rng> rngs{util::Rng{5}, util::Rng{6}};
    index.search_batch(queries, out, rngs, scratch);
    util::Rng rng_a{5};
    util::Rng rng_b{6};
    EXPECT_EQ(out[0], index.search(queries[0], rng_a)) << "round " << round;
    EXPECT_EQ(out[1], index.search(queries[1], rng_b)) << "round " << round;
  }
}

TEST(NnsIndex, DefaultSearchBatchLoopsExactSearch) {
  std::vector<BitVector> training{unary_point(64, 10), unary_point(64, 30),
                                  unary_point(64, 50)};
  ExactNns index(training);
  std::vector<BitVector> queries{unary_point(64, 28), unary_point(64, 64)};
  std::vector<std::optional<NnsMatch>> out(queries.size());
  std::vector<util::Rng> rngs{util::Rng{1}, util::Rng{1}};
  NnsBatchScratch scratch;
  index.search_batch(queries, out, rngs, scratch);
  ASSERT_TRUE(out[0].has_value());
  EXPECT_EQ(out[0]->index, 1);
  EXPECT_EQ(out[0]->distance, 2);
  ASSERT_TRUE(out[1].has_value());
  EXPECT_EQ(out[1]->index, 2);
}

TEST(KorNns, TableBytesGrowWithM2) {
  std::vector<BitVector> training{unary_point(64, 10), unary_point(64, 50)};
  KorParams small = test_params();
  small.m2 = 8;
  KorParams large = test_params();
  large.m2 = 12;
  EXPECT_LT(KorNns(training, small).table_bytes(),
            KorNns(training, large).table_bytes());
}

class KorParamSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(KorParamSweep, SearchAlwaysReturnsValidIndexOrNothing) {
  const auto [m2, m3] = GetParam();
  KorParams params = test_params();
  params.m2 = m2;
  params.m3 = m3;
  util::Rng data_rng{10};
  std::vector<BitVector> training;
  for (int i = 0; i < 25; ++i) {
    training.push_back(unary_point(96, static_cast<int>(data_rng.below(97))));
  }
  KorNns index(training, params);
  util::Rng rng{11};
  for (int q = 0; q <= 96; q += 8) {
    const auto match = index.search(unary_point(96, q), rng);
    if (match.has_value()) {
      EXPECT_GE(match->index, 0);
      EXPECT_LT(static_cast<std::size_t>(match->index), training.size());
      EXPECT_GE(match->distance, 0);
      EXPECT_LE(match->distance, 96);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Params, KorParamSweep,
                         ::testing::Combine(::testing::Values(8, 10, 12),
                                            ::testing::Values(1, 2, 3, 4)));

}  // namespace
}  // namespace infilter::nns

// Tests for the TTL hop-count detector (src/hopcount): initial-TTL
// inference, range learning/classification, decay and relearning, the
// anti-poisoning learning policy, the deterministic path model, and the
// versioned serialization format -- including the save/load -> identical
// verdicts guarantee alongside the EIA sets.

#include "hopcount/hopcount.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/eia_io.h"
#include "core/engine.h"
#include "hopcount/hopcount_io.h"
#include "hopcount/path_model.h"

namespace infilter::hopcount {
namespace {

net::IPv4Address ip(const char* text) { return *net::IPv4Address::parse(text); }

// -- Initial-TTL inference --

TEST(HopCount, InfersInitialTtlFromObservedValue) {
  EXPECT_EQ(infer_initial_ttl(0), 0);  // "not observed"
  EXPECT_EQ(infer_initial_ttl(1), 32);
  EXPECT_EQ(infer_initial_ttl(32), 32);
  EXPECT_EQ(infer_initial_ttl(33), 64);
  EXPECT_EQ(infer_initial_ttl(64), 64);
  EXPECT_EQ(infer_initial_ttl(65), 128);
  EXPECT_EQ(infer_initial_ttl(128), 128);
  EXPECT_EQ(infer_initial_ttl(129), 255);
  EXPECT_EQ(infer_initial_ttl(255), 255);
}

TEST(HopCount, RecoversHopCounts) {
  EXPECT_EQ(hops_from_ttl(0), -1);
  EXPECT_EQ(hops_from_ttl(64), 0);
  EXPECT_EQ(hops_from_ttl(57), 7);    // 64 - 57
  EXPECT_EQ(hops_from_ttl(120), 8);   // 128 - 120
  EXPECT_EQ(hops_from_ttl(245), 10);  // 255 - 245
}

// -- HopCountTable learning and classification --

TEST(HopCountTable, ClassifiesUnknownUntilLearnThreshold) {
  HopCountTable table;
  const auto src = ip("10.1.2.3");
  for (int i = 0; i < table.config().learn_threshold - 1; ++i) {
    EXPECT_EQ(table.observe(9001, src, 57, 0), HopCountTable::Observe::kLearning);
    EXPECT_EQ(table.classify(9001, src, 57, 0), TtlClass::kUnknown);
  }
  EXPECT_EQ(table.observe(9001, src, 57, 0), HopCountTable::Observe::kLearning);
  EXPECT_EQ(table.classify(9001, src, 57, 0), TtlClass::kConsistent);
  EXPECT_EQ(table.stats().established_keys, 1u);
}

TEST(HopCountTable, ToleranceWindowsTheLearnedRange) {
  HopCountConfig config;
  config.tolerance = 2;
  config.learn_threshold = 2;
  HopCountTable table(config);
  const auto src = ip("10.1.2.3");
  // Learn hop counts 7 and 9 (TTLs 57 and 55 against initial 64).
  table.observe(9001, src, 57, 0);
  table.observe(9001, src, 55, 0);
  // Window is [7 - 2, 9 + 2] hops = TTLs 59 down to 53.
  EXPECT_EQ(table.classify(9001, src, 59, 0), TtlClass::kConsistent);
  EXPECT_EQ(table.classify(9001, src, 53, 0), TtlClass::kConsistent);
  EXPECT_EQ(table.classify(9001, src, 60, 0), TtlClass::kMiss);  // 4 hops
  EXPECT_EQ(table.classify(9001, src, 52, 0), TtlClass::kMiss);  // 12 hops
  // A different initial-TTL family at the same path length is consistent:
  // only the recovered hop count matters.
  EXPECT_EQ(table.classify(9001, src, 120, 0), TtlClass::kConsistent);  // 8 hops
}

TEST(HopCountTable, KeysAreSlash24PerIngress) {
  HopCountConfig config;
  config.learn_threshold = 1;
  HopCountTable table(config);
  table.observe(9001, ip("10.1.2.3"), 57, 0);
  // Same /24, other host: shares the range.
  EXPECT_EQ(table.classify(9001, ip("10.1.2.200"), 57, 0), TtlClass::kConsistent);
  // Other /24 and other ingress: no range yet.
  EXPECT_EQ(table.classify(9001, ip("10.1.3.3"), 57, 0), TtlClass::kUnknown);
  EXPECT_EQ(table.classify(9002, ip("10.1.2.3"), 57, 0), TtlClass::kUnknown);
}

TEST(HopCountTable, MissingTtlIsIgnoredAndUnknown) {
  HopCountTable table;
  EXPECT_EQ(table.observe(9001, ip("10.1.2.3"), 0, 0),
            HopCountTable::Observe::kIgnored);
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.classify(9001, ip("10.1.2.3"), 0, 0), TtlClass::kUnknown);
}

TEST(HopCountTable, IdleEntriesDecayAndRelearn) {
  HopCountConfig config;
  config.learn_threshold = 1;
  config.decay_ms = 1000;
  HopCountTable table(config);
  const auto src = ip("10.1.2.3");
  table.observe(9001, src, 57, 0);
  EXPECT_EQ(table.classify(9001, src, 50, 500), TtlClass::kMiss);
  // Past the decay deadline the stale range no longer accuses anyone...
  EXPECT_EQ(table.classify(9001, src, 50, 1501), TtlClass::kUnknown);
  // ...and the next observation restarts learning around the new path.
  EXPECT_EQ(table.observe(9001, src, 50, 1501), HopCountTable::Observe::kLearning);
  EXPECT_EQ(table.classify(9001, src, 50, 1502), TtlClass::kConsistent);
  EXPECT_EQ(table.stats().expired_entries, 1u);
}

TEST(HopCountTable, OutOfWindowStreakRelearnsTheRange) {
  HopCountConfig config;
  config.learn_threshold = 1;
  config.relearn_threshold = 3;
  HopCountTable table(config);
  const auto src = ip("10.1.2.3");
  table.observe(9001, src, 57, 0);  // 7 hops
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(table.observe(9001, src, 44, 0),  // 20 hops
              HopCountTable::Observe::kOutOfRange);
  }
  // An in-window observation resets the streak.
  EXPECT_EQ(table.observe(9001, src, 57, 0), HopCountTable::Observe::kInRange);
  EXPECT_EQ(table.observe(9001, src, 44, 0), HopCountTable::Observe::kOutOfRange);
  EXPECT_EQ(table.observe(9001, src, 44, 0), HopCountTable::Observe::kOutOfRange);
  EXPECT_EQ(table.observe(9001, src, 44, 0), HopCountTable::Observe::kRelearned);
  EXPECT_EQ(table.classify(9001, src, 44, 0), TtlClass::kConsistent);
  EXPECT_EQ(table.stats().relearned_ranges, 1u);
}

TEST(HopCountTable, FullTableIgnoresNewKeysButServesOldOnes) {
  HopCountConfig config;
  config.learn_threshold = 1;
  config.max_entries = 1;
  HopCountTable table(config);
  table.observe(9001, ip("10.1.2.3"), 57, 0);
  EXPECT_EQ(table.observe(9001, ip("10.9.9.9"), 57, 0),
            HopCountTable::Observe::kIgnored);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.classify(9001, ip("10.1.2.3"), 57, 0), TtlClass::kConsistent);
}

// -- HopCountAnalysis learning policy --

TEST(HopCountAnalysis, LearnsOnlyFromEiaVouchedNonMissFlows) {
  HopCountConfig config;
  config.learn_threshold = 1;
  HopCountAnalysis analysis(config);
  const auto src = ip("10.1.2.3");
  // EIA-miss flows never teach the table, however many arrive.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(analysis.analyze(9001, src, 44, 0, /*eia_hit=*/false),
              TtlClass::kUnknown);
  }
  EXPECT_EQ(analysis.table().size(), 0u);
  // An EIA-vouched flow establishes the range...
  EXPECT_EQ(analysis.analyze(9001, src, 57, 0, /*eia_hit=*/true),
            TtlClass::kUnknown);
  // ...after which a spoofer's wrong path length is a miss, and -- the
  // anti-poisoning rule -- the miss itself never widens the range, even
  // though the spoofed source passes the EIA check.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(analysis.analyze(9001, src, 44, 0, /*eia_hit=*/true),
              TtlClass::kMiss);
  }
  EXPECT_EQ(analysis.analyze(9001, src, 57, 0, /*eia_hit=*/true),
            TtlClass::kConsistent);
}

// -- PathModel --

TEST(PathModel, IsDeterministicAndSeparatesHonestFromAttackers) {
  const PathModel model;
  const PathModel same;
  const auto src = ip("10.1.2.3");
  EXPECT_EQ(model.source_ttl(src, 7), same.source_ttl(src, 7));
  EXPECT_EQ(model.attacker_ttl(42, 7), same.attacker_ttl(42, 7));

  const auto& config = model.config();
  for (std::uint32_t i = 0; i < 200; ++i) {
    const net::IPv4Address source{0x0a000000u + (i << 8) + 3};
    // Stable per-/24 hop count in [min, max].
    EXPECT_EQ(model.source_hops(source),
              model.source_hops(net::IPv4Address{source.value() + 100}));
    EXPECT_GE(model.source_hops(source), config.min_hops);
    EXPECT_LE(model.source_hops(source), config.max_hops);
    // Per-flow jitter stays within +/-1 of the stable hop count.
    const int hops = hops_from_ttl(model.source_ttl(source, i));
    EXPECT_LE(std::abs(hops - model.source_hops(source)), 1);
    // Attacker paths sit strictly beyond every honest window: the honest
    // maximum plus jitter plus the default tolerance never reaches the
    // attacker minimum. This is the separation the detector relies on.
    const int attacker = hops_from_ttl(model.attacker_ttl(i + 1, i));
    EXPECT_GE(attacker, config.attacker_min_hops);
    EXPECT_LE(attacker, config.attacker_max_hops);
    EXPECT_GT(attacker, config.max_hops + 1 + HopCountConfig{}.tolerance);
  }
}

TEST(PathModel, JitterSpreadsAttackerTtls) {
  const PathModel model;
  int below = 0;
  for (std::uint64_t flow = 0; flow < 400; ++flow) {
    const int hops = hops_from_ttl(model.attacker_ttl(7, flow, 10));
    EXPECT_GE(hops, 1);
    if (hops <= model.config().max_hops + HopCountConfig{}.tolerance) ++below;
  }
  // With +/-10 jitter a real fraction of flows dips into the honest range
  // -- the evasion the jitter kind models (and partially achieves).
  EXPECT_GT(below, 0);
  EXPECT_LT(below, 400);
}

// -- Serialization (hopcount_io) --

TEST(HopCountIo, RoundTripsEveryField) {
  HopCountConfig config;
  config.learn_threshold = 2;
  HopCountTable table(config);
  table.observe(9001, ip("10.1.2.3"), 57, 100);
  table.observe(9001, ip("10.1.2.9"), 55, 200);
  table.observe(9001, ip("10.9.1.1"), 120, 300);
  table.observe(9002, ip("10.1.2.3"), 44, 400);
  table.observe(9002, ip("10.1.2.3"), 45, 500);  // established, streak state

  const auto text = export_hopcount(table);
  EXPECT_EQ(text.substr(0, kHopCountMagic.size()), kHopCountMagic);
  const auto imported = import_hopcount(text, config);
  ASSERT_TRUE(imported) << imported.error().message;

  const auto original = table.entries();
  const auto restored = imported->entries();
  ASSERT_EQ(original.size(), restored.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(original[i].ingress, restored[i].ingress);
    EXPECT_EQ(original[i].slash24.to_string(), restored[i].slash24.to_string());
    EXPECT_EQ(original[i].entry.min_hops, restored[i].entry.min_hops);
    EXPECT_EQ(original[i].entry.max_hops, restored[i].entry.max_hops);
    EXPECT_EQ(original[i].entry.count, restored[i].entry.count);
    EXPECT_EQ(original[i].entry.out_streak, restored[i].entry.out_streak);
    EXPECT_EQ(original[i].entry.last_seen, restored[i].entry.last_seen);
  }
  // A second export of the imported table is byte-identical: the format is
  // canonical.
  EXPECT_EQ(export_hopcount(*imported), text);
}

TEST(HopCountIo, RejectsMissingOrWrongMagic) {
  EXPECT_FALSE(import_hopcount(""));
  EXPECT_FALSE(import_hopcount("ingress 9001\n"));
  EXPECT_FALSE(import_hopcount("# comment first\ninfilter-hopcount v1\n"));
  EXPECT_FALSE(import_hopcount("infilter-hopcount v2\n"));
  EXPECT_FALSE(import_hopcount("infilter-eia v1\n"));
  EXPECT_TRUE(import_hopcount("infilter-hopcount v1\n"));
}

TEST(HopCountIo, RejectsCorruptBodies) {
  const std::string magic = std::string(kHopCountMagic) + "\n";
  // Entry before any ingress stanza.
  EXPECT_FALSE(import_hopcount(magic + "10.1.2.0/24 3 5 12 0 100\n"));
  // Bad ingress id.
  EXPECT_FALSE(import_hopcount(magic + "ingress nope\n"));
  EXPECT_FALSE(import_hopcount(magic + "ingress 70000\n"));
  // Non-/24 prefix.
  EXPECT_FALSE(
      import_hopcount(magic + "ingress 9001\n10.1.0.0/16 3 5 12 0 100\n"));
  // Wrong field count and non-numeric fields.
  EXPECT_FALSE(import_hopcount(magic + "ingress 9001\n10.1.2.0/24 3 5\n"));
  EXPECT_FALSE(
      import_hopcount(magic + "ingress 9001\n10.1.2.0/24 3 five 12 0 100\n"));
  // Line numbers surface in the message.
  const auto error = import_hopcount(magic + "ingress 9001\nbroken line here\n");
  ASSERT_FALSE(error);
  EXPECT_NE(error.error().message.find("line 3"), std::string::npos)
      << error.error().message;
}

// The satellite guarantee: an engine restored from the exported EIA sets
// plus the exported hop-count table produces verdicts identical to the
// engine that kept its state in memory, on an identical replay.
TEST(HopCountIo, SaveLoadReplayMatchesLiveEngineVerdicts) {
  core::EngineConfig config;
  config.mode = core::EngineMode::kBasic;  // no shared scan state to copy
  config.use_hopcount = true;
  config.hopcount.learn_threshold = 3;

  core::InFilterEngine live(config);
  live.add_expected(9001, *net::Prefix::parse("10.1.0.0/16"));

  netflow::V5Record record;
  record.dst_ip = ip("192.0.2.1");
  record.proto = 6;
  record.dst_port = 443;

  // Warm-up: honest flows establish EIA-vouched hop-count ranges.
  util::TimeMs now = 0;
  for (int i = 0; i < 40; ++i) {
    record.src_ip = net::IPv4Address{ip("10.1.2.0").value() +
                                     static_cast<std::uint32_t>(i % 4) * 256 + 7};
    record.ttl = 57;
    (void)live.process(record, 9001, ++now);
  }
  ASSERT_GT(live.hopcount_table().size(), 0u);

  // Save both tables, load them into a fresh engine.
  const auto eia_text = core::export_eia(live.eia());
  const auto hopcount_text = export_hopcount(live.hopcount_table());
  core::InFilterEngine restored(config);
  const auto eia = core::import_eia(eia_text);
  ASSERT_TRUE(eia) << eia.error().message;
  for (const auto ingress : eia->ingresses()) {
    for (const auto& prefix : eia->set_for(ingress)->to_cidrs()) {
      restored.add_expected(ingress, prefix);
    }
  }
  const auto hopcount = import_hopcount(hopcount_text, config.hopcount);
  ASSERT_TRUE(hopcount) << hopcount.error().message;
  restored.install_hopcount(*hopcount);

  // Replay: honest, in-EIA spoofed (wrong path), and out-of-EIA spoofed
  // flows must all draw identical verdicts from both engines.
  struct Probe {
    const char* src;
    std::uint8_t ttl;
  };
  const Probe probes[] = {
      {"10.1.2.7", 57},    // honest: legal
      {"10.1.2.7", 44},    // in-EIA spoof, attacker path: suspect
      {"10.1.99.1", 57},   // in-EIA, range never learned: legal
      {"172.16.0.1", 44},  // out-of-EIA + wrong path: fused attack
      {"172.16.0.1", 0},   // out-of-EIA, no TTL: plain EIA mismatch
  };
  for (const auto& probe : probes) {
    record.src_ip = ip(probe.src);
    record.ttl = probe.ttl;
    ++now;
    const auto a = live.process(record, 9001, now);
    const auto b = restored.process(record, 9001, now);
    EXPECT_EQ(a.attack, b.attack) << probe.src;
    EXPECT_EQ(a.suspect, b.suspect) << probe.src;
    EXPECT_EQ(a.stage, b.stage) << probe.src;
  }
}

}  // namespace
}  // namespace infilter::hopcount

// Fused TTL + EIA detection vs EIA-only on the in-EIA spoofing scenario.
//
// The hop-count detector (src/hopcount, DESIGN.md "Hop-count detector")
// exists for exactly one attack class EIA cannot see: spoofed sources drawn
// from the attacked ingress's own expected blocks. This bench runs the
// testbed TTL scenario twice on the same seed -- stamping is pure hashing,
// so the flow streams are field-identical -- once with EIA alone and once
// with the fused detector, and asserts the fusion wins where it must while
// staying inside the benign false-suspect budget. Exit 1 on any violation,
// so the ctest smoke entry is a regression gate, not just a number printer.
//
// Usage:
//   ttl_detect [--smoke] [--out BENCH_ttl_detect.json]

#include <cstdio>
#include <fstream>
#include <string>

#include "obs/export.h"
#include "sim/testbed.h"
#include "traffic/attacks.h"
#include "util/args.h"

using namespace infilter;

namespace {

struct Comparison {
  sim::ExperimentResult eia_only;
  sim::ExperimentResult fused;
};

Comparison run_pair(sim::ExperimentConfig config) {
  config.ttl_scenario = true;
  config.engine.use_hopcount = false;
  Comparison out;
  out.eia_only = sim::run_experiment(config);
  config.engine.use_hopcount = true;
  out.fused = sim::run_experiment(config);
  return out;
}

int per_kind_hits(const sim::ExperimentResult& result, traffic::AttackKind kind) {
  return result.per_kind[static_cast<std::size_t>(kind)].second;
}

void print_row(const char* label, const sim::ExperimentResult& r) {
  std::printf("%-10s %6.1f%% %8d/%-3d %10llu %13.4f%% %9.4f%%\n", label,
              100 * r.detection_rate(), r.detected_instances, r.attack_instances,
              static_cast<unsigned long long>(r.alerts_fused),
              100 * r.benign_suspect_rate(), 100 * r.false_positive_rate());
}

}  // namespace

int main(int argc, char** argv) {
  const auto parsed = util::Args::parse(argc, argv, {"smoke"});
  if (!parsed) {
    std::fprintf(stderr, "ttl_detect: %s\n", parsed.error().message.c_str());
    return 1;
  }
  const auto& args = *parsed;
  const bool smoke = args.has("smoke");

  sim::ExperimentConfig config;
  config.seed = static_cast<std::uint64_t>(args.int_or("seed", 21));
  config.normal_flows_per_source = smoke ? 1500 : 6000;
  config.training_flows = smoke ? 600 : 1500;
  config.attack_volume = 0.04;
  config.engine.cluster.bits_per_feature = smoke ? 48 : 144;

  std::printf("=== EIA-only vs fused TTL detection (ttl scenario, seed %llu) ===\n",
              static_cast<unsigned long long>(config.seed));
  const auto pair = run_pair(config);
  std::printf("%-10s %7s %12s %10s %14s %10s\n", "mode", "detect", "instances",
              "fused", "benign-susp", "fp");
  print_row("eia-only", pair.eia_only);
  print_row("fused", pair.fused);

  const int eia_in_eia =
      per_kind_hits(pair.eia_only, traffic::AttackKind::kInEiaSpoofFlood);
  const int fused_in_eia =
      per_kind_hits(pair.fused, traffic::AttackKind::kInEiaSpoofFlood);
  const double benign_delta =
      pair.fused.benign_suspect_rate() - pair.eia_only.benign_suspect_rate();
  std::printf("in-EIA spoof flood: eia-only %d/1, fused %d/1\n", eia_in_eia,
              fused_in_eia);
  std::printf("benign false-suspect delta: %+.4f%%\n", 100 * benign_delta);

  // The regression gates.
  int failures = 0;
  const auto require = [&](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "ttl_detect: FAIL: %s\n", what);
      ++failures;
    }
  };
  require(eia_in_eia == 0,
          "EIA alone saw the in-EIA spoof flood (scenario is broken: those "
          "sources must pass the membership check)");
  require(fused_in_eia == 1, "fusion missed the in-EIA spoof flood");
  require(pair.fused.detected_instances >= pair.eia_only.detected_instances,
          "fusion detected fewer instances than EIA alone");
  require(pair.fused.alerts_fused > 0,
          "no high-confidence fused alerts on doubly-inconsistent flows");
  require(benign_delta <= 0.01,
          "TTL stage pushed >1% extra benign flows into the suspect path");
  require(pair.fused.false_positive_rate() <=
              pair.eia_only.false_positive_rate() + 0.005,
          "fusion regressed the final false-positive rate");

  std::string doc = "{\n  \"bench\": \"ttl_detect\",\n";
  doc += "  \"seed\": " + std::to_string(config.seed) + ",\n";
  doc += "  \"runs\": [\n";
  const auto run_doc = [](const char* mode, const sim::ExperimentResult& r) {
    std::string d = "    {\"mode\": \"" + std::string(mode) + "\"";
    d += ", \"detection_rate\": " + obs::format_number(r.detection_rate());
    d += ", \"detected_instances\": " + std::to_string(r.detected_instances);
    d += ", \"attack_instances\": " + std::to_string(r.attack_instances);
    d += ", \"alerts_fused\": " + std::to_string(r.alerts_fused);
    d += ", \"benign_suspect_rate\": " + obs::format_number(r.benign_suspect_rate());
    d += ", \"false_positive_rate\": " + obs::format_number(r.false_positive_rate());
    d += "}";
    return d;
  };
  doc += run_doc("eia_only", pair.eia_only) + ",\n";
  doc += run_doc("fused", pair.fused) + "\n  ],\n";
  doc += "  \"in_eia_spoof_detected_eia_only\": " + std::to_string(eia_in_eia) + ",\n";
  doc += "  \"in_eia_spoof_detected_fused\": " + std::to_string(fused_in_eia) + ",\n";
  doc += "  \"benign_suspect_delta\": " + obs::format_number(benign_delta) + ",\n";
  doc += "  \"failures\": " + std::to_string(failures) + "\n}\n";

  const auto out_path = args.value_or("out", "BENCH_ttl_detect.json");
  std::ofstream out(out_path, std::ios::trunc);
  out << doc;
  if (!out) {
    std::fprintf(stderr, "ttl_detect: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return failures == 0 ? 0 : 1;
}

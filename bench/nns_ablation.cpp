// Ablation: the KOR approximate NNS vs an exact linear scan, and the
// sensitivity of the structure to its parameters (M2, M3, d).
//
// DESIGN.md calls out the approximate structure as a core design choice:
// [KOR] buys sub-linear search at the cost of approximation. This bench
// quantifies both sides on the engine's real flow encoding:
//   * accuracy: how often the approximate neighbor's distance leads to the
//     same anomalous/normal decision as the exact neighbor's;
//   * speed: per-query latency of KOR vs exact scan as training grows;
//   * memory: table bytes vs M2;
//   * batching: assess_batch() (level-synchronous probing over the SoA
//     tables, arena-backed encoding) vs per-flow assess() on a testbed
//     stream, plus a steady-state heap-allocation count proving the batch
//     encode path does zero per-flow allocations. The batch section writes
//     BENCH_nns_batch.json.
//
// Usage:
//   nns_ablation [--smoke]             # batch section only, small preset
//                [--out BENCH_nns_batch.json]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/cluster.h"
#include "dagflow/dagflow.h"
#include "obs/export.h"
#include "sim/testbed.h"
#include "traffic/attacks.h"
#include "traffic/normal.h"
#include "util/args.h"

// Sanitizer builds own operator new/delete (replacing them breaks ASan's
// alloc/dealloc matching); the allocation probe is a release-lane check.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define INFILTER_BENCH_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define INFILTER_BENCH_SANITIZED 1
#endif
#endif
#ifndef INFILTER_BENCH_SANITIZED
#define INFILTER_BENCH_SANITIZED 0
#endif

// Global operator new/delete overrides: count every heap allocation made by
// this binary so the batch section can prove the steady-state assess_batch
// path allocates nothing per flow. Counting only; allocation still goes
// through malloc/free.
namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};

#if !INFILTER_BENCH_SANITIZED
void* counted_alloc(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}
#endif
}  // namespace

#if !INFILTER_BENCH_SANITIZED
void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#endif

using namespace infilter;
using Clock = std::chrono::steady_clock;

namespace {

std::vector<netflow::V5Record> flows_from_trace(const traffic::Trace& trace,
                                                std::uint64_t seed) {
  dagflow::Dagflow replayer(
      dagflow::DagflowConfig{},
      dagflow::AddressPool::from_subblocks({*net::SubBlock::parse("1a")}), seed);
  std::vector<netflow::V5Record> records;
  for (const auto& labeled : replayer.replay(trace)) records.push_back(labeled.record);
  return records;
}

struct Evaluation {
  double agreement = 0;   // same verdict as exact, over all queries
  double detect_rate = 0; // anomalous verdicts on attack flows
  double pass_rate = 0;   // normal verdicts on normal flows
  double us_per_query = 0;
};

Evaluation evaluate(const core::ClusterConfig& config,
                    const std::vector<netflow::V5Record>& training,
                    const std::vector<netflow::V5Record>& normal_queries,
                    const std::vector<netflow::V5Record>& attack_queries) {
  core::TrainedClusters approx(training, config, 101);
  core::ClusterConfig exact_config = config;
  exact_config.use_exact_nns = true;
  core::TrainedClusters exact(training, exact_config, 101);

  util::Rng rng{7};
  Evaluation out;
  int agree = 0;
  int total = 0;
  int detected = 0;
  int passed = 0;

  const auto start = Clock::now();
  for (const auto& query : normal_queries) {
    const bool a = approx.assess(query, rng).anomalous;
    const bool e = exact.assess(query, rng).anomalous;
    agree += (a == e) ? 1 : 0;
    passed += a ? 0 : 1;
    ++total;
  }
  for (const auto& query : attack_queries) {
    const bool a = approx.assess(query, rng).anomalous;
    const bool e = exact.assess(query, rng).anomalous;
    agree += (a == e) ? 1 : 0;
    detected += a ? 1 : 0;
    ++total;
  }
  const auto elapsed =
      std::chrono::duration<double, std::micro>(Clock::now() - start).count();

  out.agreement = static_cast<double>(agree) / total;
  out.detect_rate = static_cast<double>(detected) / attack_queries.size();
  out.pass_rate = static_cast<double>(passed) / normal_queries.size();
  out.us_per_query = elapsed / total / 2;  // two assessments per query
  return out;
}

int benchmarkish_sink = 0;

double time_queries(const core::TrainedClusters& clusters,
                    const std::vector<netflow::V5Record>& queries) {
  util::Rng rng{9};
  const auto start = Clock::now();
  for (const auto& query : queries) {
    benchmarkish_sink += clusters.assess(query, rng).distance;
  }
  return std::chrono::duration<double, std::micro>(Clock::now() - start).count() /
         static_cast<double>(queries.size());
}

struct BatchTiming {
  std::size_t records = 0;
  std::size_t batch_size = 0;
  double per_flow_us = 0;     // assess() per query
  double batch_us = 0;        // assess_batch() per query
  std::uint64_t steady_allocs = 0;  // heap allocations in a warm batch pass
  std::size_t steady_flows = 0;     // flows covered by that pass
};

/// Same per-query RNG seeding on both paths so the comparison times the
/// identical probe schedule (matching the engine's per-flow seed scheme).
util::Rng query_rng(std::size_t i) { return util::Rng{0x9e90 + 7 * i}; }

BatchTiming measure_batch(const sim::ExperimentConfig& config,
                          std::size_t batch_size) {
  const auto stream = sim::generate_stream(config);
  const auto clusters = sim::train_clusters(config);

  std::vector<netflow::V5Record> records;
  records.reserve(stream.flows.size());
  for (const auto& flow : stream.flows) records.push_back(flow.record);

  BatchTiming t;
  t.records = records.size();
  t.batch_size = batch_size;

  // Per-flow reference path: one assess() per record.
  long long sink = 0;
  {
    const auto start = Clock::now();
    for (std::size_t i = 0; i < records.size(); ++i) {
      auto rng = query_rng(i);
      sink += clusters->assess(records[i], rng).distance;
    }
    t.per_flow_us =
        std::chrono::duration<double, std::micro>(Clock::now() - start).count() /
        static_cast<double>(records.size());
  }

  // Batched path: reused scratch, chunks of batch_size.
  core::TrainedClusters::BatchScratch scratch;
  std::vector<util::Rng> rngs(batch_size, util::Rng{0});
  std::vector<core::TrainedClusters::Assessment> out(batch_size);
  const auto run_batched = [&] {
    for (std::size_t begin = 0; begin < records.size();) {
      const std::size_t n = std::min(batch_size, records.size() - begin);
      for (std::size_t i = 0; i < n; ++i) rngs[i] = query_rng(begin + i);
      clusters->assess_batch(std::span(records).subspan(begin, n),
                             std::span(rngs).first(n),
                             std::span(out).first(n), scratch);
      for (std::size_t i = 0; i < n; ++i) sink += out[i].distance;
      begin += n;
    }
  };
  {
    const auto start = Clock::now();
    run_batched();
    t.batch_us =
        std::chrono::duration<double, std::micro>(Clock::now() - start).count() /
        static_cast<double>(records.size());
  }

  // Steady-state allocation probe: the first pass grew the arena pools, so
  // a second pass over the same stream must not touch the heap at all.
  {
    const auto before = g_heap_allocs.load(std::memory_order_relaxed);
    run_batched();
    t.steady_allocs = g_heap_allocs.load(std::memory_order_relaxed) - before;
    t.steady_flows = records.size();
  }

  if (sink == 42) std::printf("(sink)\n");  // defeat dead-code elimination
  return t;
}

int run_batch_section(const util::Args& args, bool smoke) {
  sim::ExperimentConfig config;
  config.seed = 33;
  // Full runs measure at the paper's d=720 operating point (where the NNS
  // stage actually hurts, per Section 6.4); smoke shrinks to d=240.
  config.engine.cluster.bits_per_feature = smoke ? 48 : 144;
  config.normal_flows_per_source =
      static_cast<std::size_t>(args.int_or("flows", smoke ? 300 : 3000));
  config.training_flows = smoke ? 300 : 1500;
  config.attack_volume = 0.04;
  config.attacked_ingresses = config.sources;

  const auto batch_size =
      static_cast<std::size_t>(args.int_or("batch", 256));
  std::printf("=== batched vs per-flow NNS on the testbed stream ===\n");
  const auto t = measure_batch(config, batch_size);
  const double speedup = t.batch_us > 0 ? t.per_flow_us / t.batch_us : 0;
  std::printf("%zu records, batch=%zu\n", t.records, t.batch_size);
  std::printf("per-flow assess:   %.2f us/flow\n", t.per_flow_us);
  std::printf("assess_batch:      %.2f us/flow (%.2fx)\n", t.batch_us, speedup);
  std::printf("steady-state heap allocations over %zu flows: %llu\n",
              t.steady_flows,
              static_cast<unsigned long long>(t.steady_allocs));

  std::string doc = "{\n  \"bench\": \"nns_batch\",\n";
  doc += "  \"hardware_threads\": " +
         std::to_string(std::thread::hardware_concurrency()) + ",\n";
  doc += "  \"records\": " + std::to_string(t.records) + ",\n";
  doc += "  \"batch_size\": " + std::to_string(t.batch_size) + ",\n";
  doc += "  \"per_flow_us_per_query\": " + obs::format_number(t.per_flow_us) + ",\n";
  doc += "  \"batch_us_per_query\": " + obs::format_number(t.batch_us) + ",\n";
  doc += "  \"speedup_batch_vs_per_flow\": " + obs::format_number(speedup) + ",\n";
  doc += "  \"steady_state_heap_allocs\": " + std::to_string(t.steady_allocs) + ",\n";
  doc += "  \"steady_state_flows\": " + std::to_string(t.steady_flows) + "\n}\n";

  const auto out_path = args.value_or("out", "BENCH_nns_batch.json");
  std::ofstream out(out_path, std::ios::trunc);
  out << doc;
  if (!out) {
    std::fprintf(stderr, "nns_ablation: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

void run_ablation_sections() {
  traffic::NormalTrafficModel model;
  util::Rng rng{55};
  const auto training = flows_from_trace(model.generate(2000, 0, rng), 1);
  const auto normal_queries = flows_from_trace(model.generate(400, 0, rng), 2);
  traffic::AttackConfig attack_config;
  attack_config.companion_fraction = 0;
  const auto attack_queries =
      flows_from_trace(traffic::generate_attack_set(attack_config, 0, 60000, rng), 3);

  std::printf("=== KOR vs exact NNS: verdict agreement on real flow encodings ===\n");
  std::printf("training %zu flows, %zu normal + %zu attack queries\n\n",
              training.size(), normal_queries.size(), attack_queries.size());

  std::printf("--- M3 sweep (registration ball radius), d=720, M2=12 ---\n");
  std::printf("%-6s %-12s %-12s %-12s\n", "M3", "agreement", "detect", "pass-normal");
  for (const int m3 : {1, 2, 3, 4}) {
    core::ClusterConfig config;
    config.kor.m3 = m3;
    const auto eval = evaluate(config, training, normal_queries, attack_queries);
    std::printf("%-6d %10.1f%% %10.1f%% %10.1f%%\n", m3, 100 * eval.agreement,
                100 * eval.detect_rate, 100 * eval.pass_rate);
  }

  std::printf("\n--- M2 sweep (trace width / table size), d=720, M3=3 ---\n");
  std::printf("%-6s %-12s %-12s %-14s\n", "M2", "agreement", "detect", "table MiB");
  for (const int m2 : {8, 10, 12, 14}) {
    core::ClusterConfig config;
    config.kor.m2 = m2;
    const auto eval = evaluate(config, training, normal_queries, attack_queries);
    // Size probe: one subcluster structure at this M2.
    std::vector<nns::BitVector> sample;
    const auto encoder = core::make_flow_encoder(config.bits_per_feature);
    for (std::size_t i = 0; i < std::min<std::size_t>(300, training.size()); ++i) {
      sample.push_back(
          encoder.encode(flowtools::FlowStats::from_record(training[i]).as_array()));
    }
    nns::KorParams params = config.kor;
    const nns::KorNns probe(sample, params);
    std::printf("%-6d %10.1f%% %10.1f%% %12.1f\n", m2, 100 * eval.agreement,
                100 * eval.detect_rate,
                static_cast<double>(probe.table_bytes()) / (1024.0 * 1024.0));
  }

  std::printf("\n--- d sweep (unary bits per flow), M2=12, M3=3 ---\n");
  std::printf("%-6s %-12s %-12s %-12s\n", "d", "agreement", "detect", "pass-normal");
  for (const int bits : {40, 80, 144, 200}) {
    core::ClusterConfig config;
    config.bits_per_feature = bits;
    const auto eval = evaluate(config, training, normal_queries, attack_queries);
    std::printf("%-6d %10.1f%% %10.1f%% %10.1f%%\n", bits * 5, 100 * eval.agreement,
                100 * eval.detect_rate, 100 * eval.pass_rate);
  }

  std::printf("\n--- query latency: KOR binary search vs exact linear scan ---\n");
  std::printf("%-10s %-14s %-14s\n", "training", "KOR us/query", "exact us/query");
  for (const std::size_t n : {std::size_t{250}, std::size_t{1000}, std::size_t{2000}}) {
    const std::vector<netflow::V5Record> subset(
        training.begin(), training.begin() + static_cast<std::ptrdiff_t>(n));
    core::ClusterConfig config;
    const core::TrainedClusters kor(subset, config, 77);
    core::ClusterConfig exact_config;
    exact_config.use_exact_nns = true;
    const core::TrainedClusters exact(subset, exact_config, 77);
    std::printf("%-10zu %12.1f %14.1f\n", n, time_queries(kor, normal_queries),
                time_queries(exact, normal_queries));
  }
  std::printf("\n(sink: %d)\n", benchmarkish_sink);
}

}  // namespace

int main(int argc, char** argv) {
  const auto parsed = util::Args::parse(argc, argv, {"smoke"});
  if (!parsed) {
    std::fprintf(stderr, "nns_ablation: %s\n", parsed.error().message.c_str());
    return 1;
  }
  const auto& args = *parsed;
  const bool smoke = args.has("smoke");
  // Smoke mode (the ctest entry) runs only the batch section; the full
  // parameter ablation takes minutes and is invoked manually.
  if (!smoke) run_ablation_sections();
  return run_batch_section(args, smoke);
}

// Ablation: the KOR approximate NNS vs an exact linear scan, and the
// sensitivity of the structure to its parameters (M2, M3, d).
//
// DESIGN.md calls out the approximate structure as a core design choice:
// [KOR] buys sub-linear search at the cost of approximation. This bench
// quantifies both sides on the engine's real flow encoding:
//   * accuracy: how often the approximate neighbor's distance leads to the
//     same anomalous/normal decision as the exact neighbor's;
//   * speed: per-query latency of KOR vs exact scan as training grows;
//   * memory: table bytes vs M2.

#include <chrono>
#include <cstdio>
#include <vector>

#include "core/cluster.h"
#include "dagflow/dagflow.h"
#include "traffic/attacks.h"
#include "traffic/normal.h"

using namespace infilter;
using Clock = std::chrono::steady_clock;

namespace {

std::vector<netflow::V5Record> flows_from_trace(const traffic::Trace& trace,
                                                std::uint64_t seed) {
  dagflow::Dagflow replayer(
      dagflow::DagflowConfig{},
      dagflow::AddressPool::from_subblocks({*net::SubBlock::parse("1a")}), seed);
  std::vector<netflow::V5Record> records;
  for (const auto& labeled : replayer.replay(trace)) records.push_back(labeled.record);
  return records;
}

struct Evaluation {
  double agreement = 0;   // same verdict as exact, over all queries
  double detect_rate = 0; // anomalous verdicts on attack flows
  double pass_rate = 0;   // normal verdicts on normal flows
  double us_per_query = 0;
};

Evaluation evaluate(const core::ClusterConfig& config,
                    const std::vector<netflow::V5Record>& training,
                    const std::vector<netflow::V5Record>& normal_queries,
                    const std::vector<netflow::V5Record>& attack_queries) {
  core::TrainedClusters approx(training, config, 101);
  core::ClusterConfig exact_config = config;
  exact_config.use_exact_nns = true;
  core::TrainedClusters exact(training, exact_config, 101);

  util::Rng rng{7};
  Evaluation out;
  int agree = 0;
  int total = 0;
  int detected = 0;
  int passed = 0;

  const auto start = Clock::now();
  for (const auto& query : normal_queries) {
    const bool a = approx.assess(query, rng).anomalous;
    const bool e = exact.assess(query, rng).anomalous;
    agree += (a == e) ? 1 : 0;
    passed += a ? 0 : 1;
    ++total;
  }
  for (const auto& query : attack_queries) {
    const bool a = approx.assess(query, rng).anomalous;
    const bool e = exact.assess(query, rng).anomalous;
    agree += (a == e) ? 1 : 0;
    detected += a ? 1 : 0;
    ++total;
  }
  const auto elapsed =
      std::chrono::duration<double, std::micro>(Clock::now() - start).count();

  out.agreement = static_cast<double>(agree) / total;
  out.detect_rate = static_cast<double>(detected) / attack_queries.size();
  out.pass_rate = static_cast<double>(passed) / normal_queries.size();
  out.us_per_query = elapsed / total / 2;  // two assessments per query
  return out;
}

int benchmarkish_sink = 0;

double time_queries(const core::TrainedClusters& clusters,
                    const std::vector<netflow::V5Record>& queries) {
  util::Rng rng{9};
  const auto start = Clock::now();
  for (const auto& query : queries) {
    benchmarkish_sink += clusters.assess(query, rng).distance;
  }
  return std::chrono::duration<double, std::micro>(Clock::now() - start).count() /
         static_cast<double>(queries.size());
}

}  // namespace

int main() {
  traffic::NormalTrafficModel model;
  util::Rng rng{55};
  const auto training = flows_from_trace(model.generate(2000, 0, rng), 1);
  const auto normal_queries = flows_from_trace(model.generate(400, 0, rng), 2);
  traffic::AttackConfig attack_config;
  attack_config.companion_fraction = 0;
  const auto attack_queries =
      flows_from_trace(traffic::generate_attack_set(attack_config, 0, 60000, rng), 3);

  std::printf("=== KOR vs exact NNS: verdict agreement on real flow encodings ===\n");
  std::printf("training %zu flows, %zu normal + %zu attack queries\n\n",
              training.size(), normal_queries.size(), attack_queries.size());

  std::printf("--- M3 sweep (registration ball radius), d=720, M2=12 ---\n");
  std::printf("%-6s %-12s %-12s %-12s\n", "M3", "agreement", "detect", "pass-normal");
  for (const int m3 : {1, 2, 3, 4}) {
    core::ClusterConfig config;
    config.kor.m3 = m3;
    const auto eval = evaluate(config, training, normal_queries, attack_queries);
    std::printf("%-6d %10.1f%% %10.1f%% %10.1f%%\n", m3, 100 * eval.agreement,
                100 * eval.detect_rate, 100 * eval.pass_rate);
  }

  std::printf("\n--- M2 sweep (trace width / table size), d=720, M3=3 ---\n");
  std::printf("%-6s %-12s %-12s %-14s\n", "M2", "agreement", "detect", "table MiB");
  for (const int m2 : {8, 10, 12, 14}) {
    core::ClusterConfig config;
    config.kor.m2 = m2;
    const auto eval = evaluate(config, training, normal_queries, attack_queries);
    // Size probe: one subcluster structure at this M2.
    std::vector<nns::BitVector> sample;
    const auto encoder = core::make_flow_encoder(config.bits_per_feature);
    for (std::size_t i = 0; i < std::min<std::size_t>(300, training.size()); ++i) {
      sample.push_back(
          encoder.encode(flowtools::FlowStats::from_record(training[i]).as_array()));
    }
    nns::KorParams params = config.kor;
    const nns::KorNns probe(sample, params);
    std::printf("%-6d %10.1f%% %10.1f%% %12.1f\n", m2, 100 * eval.agreement,
                100 * eval.detect_rate,
                static_cast<double>(probe.table_bytes()) / (1024.0 * 1024.0));
  }

  std::printf("\n--- d sweep (unary bits per flow), M2=12, M3=3 ---\n");
  std::printf("%-6s %-12s %-12s %-12s\n", "d", "agreement", "detect", "pass-normal");
  for (const int bits : {40, 80, 144, 200}) {
    core::ClusterConfig config;
    config.bits_per_feature = bits;
    const auto eval = evaluate(config, training, normal_queries, attack_queries);
    std::printf("%-6d %10.1f%% %10.1f%% %10.1f%%\n", bits * 5, 100 * eval.agreement,
                100 * eval.detect_rate, 100 * eval.pass_rate);
  }

  std::printf("\n--- query latency: KOR binary search vs exact linear scan ---\n");
  std::printf("%-10s %-14s %-14s\n", "training", "KOR us/query", "exact us/query");
  for (const std::size_t n : {std::size_t{250}, std::size_t{1000}, std::size_t{2000}}) {
    const std::vector<netflow::V5Record> subset(
        training.begin(), training.begin() + static_cast<std::ptrdiff_t>(n));
    core::ClusterConfig config;
    const core::TrainedClusters kor(subset, config, 77);
    core::ClusterConfig exact_config;
    exact_config.use_exact_nns = true;
    const core::TrainedClusters exact(subset, exact_config, 77);
    std::printf("%-10zu %12.1f %14.1f\n", n, time_queries(kor, normal_queries),
                time_queries(exact, normal_queries));
  }
  std::printf("\n(sink: %d)\n", benchmarkish_sink);
  return 0;
}

// Reproduces Section 3.2 / Figure 5: stability of the source-AS -> peer-AS
// mapping derived from Routeviews-style BGP snapshots.
//
//   paper: 20 targets tracked for 30 days every 2 hours (346 snapshots);
//          average fractional source-AS-set change 1.6%, maximum 5%;
//          change grows with the target's number of peer ASs.
//
// Prints the Figure 5 scatter (one row per target: #peer ASs vs average
// and max fractional change) plus the overall statistics.

#include <algorithm>
#include <cstdio>

#include "routing/studies.h"

using namespace infilter;

int main() {
  routing::BgpStudyConfig config;
  config.target_count = 20;
  config.snapshots = 346;  // 30 days every 2 hours
  config.period = 2 * util::kHour;
  config.seed = 320;
  // Larger topology so target degree spans Figure 5's peer-AS axis.
  config.topology.tier1_count = 12;
  config.topology.tier2_count = 90;
  config.topology.stub_count = 650;
  config.topology.tier2_peer_probability = 0.12;
  config.topology.tier2_max_providers = 4;
  config.churn.link_fail_per_hour = 0.007;

  std::printf("=== Section 3.2 / Figure 5: BGP-based validation ===\n");
  std::printf("%d targets, %d snapshots every 2 hours\n\n", config.target_count,
              config.snapshots);

  auto result = run_bgp_study(config);
  std::sort(result.targets.begin(), result.targets.end(),
            [](const auto& a, const auto& b) {
              return a.peer_as_count < b.peer_as_count;
            });

  std::printf("%-8s %-10s %-18s %-18s\n", "target", "peer ASs", "avg change",
              "max change");
  for (const auto& series : result.targets) {
    std::printf("AS%-6d %-10d %6.2f%% %18.2f%%\n", series.as_number,
                series.peer_as_count, 100.0 * series.avg_fractional_change,
                100.0 * series.max_fractional_change);
  }
  std::printf("\n%-42s paper  1.6%%   measured %5.2f%%\n",
              "average source-AS-set change:", 100.0 * result.overall_avg_change);
  std::printf("%-42s paper  5.0%%   measured %5.2f%%\n",
              "maximum source-AS-set change:", 100.0 * result.overall_max_change);

  // The Figure 5 trend: more peer ASs -> more mapping churn. Compare the
  // low-degree half against the high-degree half.
  const std::size_t half = result.targets.size() / 2;
  double low = 0;
  double high = 0;
  for (std::size_t i = 0; i < half; ++i) low += result.targets[i].avg_fractional_change;
  for (std::size_t i = half; i < result.targets.size(); ++i) {
    high += result.targets[i].avg_fractional_change;
  }
  low /= static_cast<double>(half);
  high /= static_cast<double>(result.targets.size() - half);
  std::printf("\ntrend check: avg change, low-degree half %.2f%% vs high-degree half"
              " %.2f%% (paper: increases with peer count)\n",
              100.0 * low, 100.0 * high);
  return 0;
}

// Reproduces Figure 1: "Relative Stability of Route between Source and
// Target". The paper's conceptual curve -- stable near the source (where
// egress filtering operates) and near the target (where InFilter
// operates), volatile in between -- measured on the synthetic internet as
// per-hop change rates bucketed by relative path position.

#include <cstdio>

#include "routing/studies.h"

using namespace infilter;

int main() {
  routing::TracerouteStudyConfig config;
  config.looking_glass_sites = 24;
  config.target_count = 20;
  config.period = 30 * util::kMinute;
  config.readings = 49;
  config.completion_probability = 1.0;  // every hop of every path counts
  config.seed = 101;

  const auto profile = routing::run_stability_profile(config);

  std::printf("=== Figure 1: route stability vs position between source and"
              " target ===\n");
  std::printf("(stability = 1 - per-hop raw change rate per 30-min reading;"
              " ends anchored)\n\n");
  std::printf("%-22s %-12s %-10s\n", "position", "stability", "");
  double best_edge = 0;
  double worst_middle = 1;
  for (int b = 0; b < routing::StabilityProfile::kBuckets; ++b) {
    const auto i = static_cast<std::size_t>(b);
    const double stability = 1.0 - profile.change_rate[i];
    char label[32];
    std::snprintf(label, sizeof label, "%d%%-%d%% of path", b * 10, b * 10 + 10);
    std::printf("%-22s %8.2f%%   ", label, 100.0 * stability);
    const int bars = static_cast<int>(stability * 40);
    for (int x = 0; x < bars; ++x) std::putchar('#');
    std::printf("\n");
    if (b == 0 || b == routing::StabilityProfile::kBuckets - 1) {
      best_edge = std::max(best_edge, stability);
    } else if (b >= 3 && b <= 6) {
      worst_middle = std::min(worst_middle, stability);
    }
  }
  std::printf("\npaper's shape check: edges stable, middle volatile -> "
              "edge %.2f%% vs mid-path minimum %.2f%%\n",
              100.0 * best_edge, 100.0 * worst_middle);
  std::printf("InFilter operates in the right-hand stable region; egress"
              " filtering in the left-hand one.\n");
  return 0;
}

// Ablations of the Enhanced InFilter design choices called out in
// DESIGN.md, all measured on the Section 6 testbed:
//
//   1. Scan-analysis buffer size -- the paper uses ~200 flows; smaller
//      buffers forget slow scans, larger ones cost memory.
//   2. Pipeline stages -- EIA only / +scan / +NNS / full, showing what
//      each stage contributes to detection and FP suppression.
//   3. EIA auto-learn threshold -- fast learning absorbs route changes
//      (fewer FPs) but lets persistent attackers poison the EIA sets
//      (lower detection).
//   4. Cluster partition -- per-protocol subclusters vs one global
//      cluster ("normal traffic flows to a particular application will
//      show less variation").

#include <cstdio>

#include "sim/testbed.h"

using namespace infilter;

namespace {

sim::ExperimentConfig base_config() {
  sim::ExperimentConfig config;
  config.normal_flows_per_source = 5000;
  config.training_flows = 1800;
  config.attack_volume = 0.04;
  config.route_change_blocks = 2;
  config.engine.cluster.bits_per_feature = 144;
  config.seed = 808;
  return config;
}

void print_row(const char* label, const sim::ExperimentResult& result) {
  std::printf("%-34s det %5.1f%%  (flows %5.1f%%)  fp %5.2f%%\n", label,
              100.0 * result.detection_rate(), 100.0 * result.flow_detection_rate(),
              100.0 * result.false_positive_rate());
}

}  // namespace

int main() {
  auto config = base_config();
  sim::ClusterCache cache(config);
  const auto clusters = cache.get(config.seed);

  std::printf("=== 1. Scan-analysis buffer size (paper: ~200 flows) ===\n");
  for (const std::size_t buffer : {50u, 100u, 200u, 400u, 800u}) {
    config = base_config();
    config.engine.scan.buffer_size = buffer;
    char label[64];
    std::snprintf(label, sizeof label, "buffer = %zu flows", buffer);
    print_row(label, sim::run_experiment(config, clusters));
  }

  std::printf("\n=== 2. Pipeline stages ===\n");
  {
    config = base_config();
    config.engine.mode = core::EngineMode::kBasic;
    print_row("EIA only (Basic InFilter)", sim::run_experiment(config));

    config = base_config();
    config.engine.use_nns = false;
    print_row("EIA + scan analysis", sim::run_experiment(config));

    config = base_config();
    config.engine.use_scan_analysis = false;
    print_row("EIA + NNS", sim::run_experiment(config, clusters));

    config = base_config();
    print_row("full Enhanced InFilter", sim::run_experiment(config, clusters));
  }

  std::printf("\n=== 3. EIA auto-learn threshold ===\n");
  for (const int threshold : {6, 12, 24, 48, 96}) {
    config = base_config();
    config.engine.eia.learn_threshold = threshold;
    char label[64];
    std::snprintf(label, sizeof label, "learn after %d flows per /24", threshold);
    print_row(label, sim::run_experiment(config, clusters));
  }

  std::printf("\n=== 4. Cluster partition (per-protocol vs single cluster) ===\n");
  {
    config = base_config();
    print_row("7 protocol subclusters", sim::run_experiment(config, clusters));
    config = base_config();
    config.engine.cluster.partition_by_protocol = false;
    print_row("one global cluster", sim::run_experiment(config));
  }

  std::printf("\n=== 5. NNS threshold percentile ===\n");
  for (const double pct : {0.90, 0.99, 0.999}) {
    config = base_config();
    config.engine.cluster.threshold_percentile = pct;
    char label[64];
    std::snprintf(label, sizeof label, "threshold at %.1fth percentile", 100 * pct);
    print_row(label, sim::run_experiment(config));
  }

  std::printf("\n=== 6. Sampled NetFlow (1-in-N packet sampling) ===\n");
  std::printf("(stealthy single-packet attacks vanish from sampled exports)\n");
  for (const std::uint32_t n : {1u, 10u, 50u, 200u}) {
    config = base_config();
    config.netflow_sampling = n;
    char label[64];
    std::snprintf(label, sizeof label, "sampling 1-in-%u", n);
    print_row(label, sim::run_experiment(config));
  }
  return 0;
}

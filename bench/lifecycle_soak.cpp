// Long-horizon churn soak: detection quality over virtual weeks of aging,
// routing churn, exporter restarts, and live shard-pool resizes.
//
// Runs the sim/soak.h harness twice on the same seed: once "churned"
// (exact-EIA aging on, >= 2 live resizes mid-horizon) and once as the
// static-pool baseline (same waves, same aging, no resizes). The
// lifecycle acceptance bar (ISSUE: lifecycle subsystem) is asserted as
// regression gates, so the ctest smoke entry fails the build when churn
// decays quality: per-wave fused detection must not drop below the
// static-pool run's, the benign false-suspect delta must stay <= +0.01,
// aging must actually fire (entries expired > 0), and every scheduled
// resize must have completed with state migrated.
//
// Usage:
//   lifecycle_soak [--smoke] [--seed N] [--out BENCH_lifecycle.json]

#include <cstdio>
#include <fstream>
#include <string>

#include "obs/export.h"
#include "sim/soak.h"
#include "util/args.h"

using namespace infilter;

namespace {

void print_wave(const char* mode, const sim::SoakWave& w) {
  std::printf("%-8s wave %d  %d shard(s)  detect %6.1f%%  fp %7.4f%%  "
              "benign-susp %7.4f%%  expired %llu  relearned %llu\n",
              mode, w.wave, w.shards, 100 * w.detection_rate,
              100 * w.false_positive_rate, 100 * w.benign_suspect_rate,
              static_cast<unsigned long long>(w.entries_expired),
              static_cast<unsigned long long>(w.entries_relearned));
}

std::string wave_doc(const char* mode, const sim::SoakWave& w) {
  std::string d = "    {\"mode\": \"" + std::string(mode) + "\"";
  d += ", \"wave\": " + std::to_string(w.wave);
  d += ", \"shards\": " + std::to_string(w.shards);
  d += ", \"detection_rate\": " + obs::format_number(w.detection_rate);
  d += ", \"flow_detection_rate\": " + obs::format_number(w.flow_detection_rate);
  d += ", \"false_positive_rate\": " + obs::format_number(w.false_positive_rate);
  d += ", \"benign_suspect_rate\": " + obs::format_number(w.benign_suspect_rate);
  d += ", \"entries_expired\": " + std::to_string(w.entries_expired);
  d += ", \"entries_relearned\": " + std::to_string(w.entries_relearned);
  d += ", \"swept\": " + std::to_string(w.swept);
  d += "}";
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  const auto parsed = util::Args::parse(argc, argv, {"smoke"});
  if (!parsed) {
    std::fprintf(stderr, "lifecycle_soak: %s\n", parsed.error().message.c_str());
    return 1;
  }
  const auto& args = *parsed;
  const bool smoke = args.has("smoke");

  sim::SoakConfig soak;
  soak.base.seed = static_cast<std::uint64_t>(args.int_or("seed", 33));
  soak.base.normal_flows_per_source = smoke ? 400 : 2000;
  soak.base.training_flows = smoke ? 300 : 1200;
  soak.base.attack_volume = 0.04;
  soak.base.engine.cluster.bits_per_feature = smoke ? 48 : 144;
  soak.base.runtime_shards = 2;
  soak.base.runtime_queue_depth = 1024;
  // Routing churn donates blocks between sources every wave, so drift
  // entries are learned, idle out across the day-long gaps, and relearn.
  soak.base.route_change_blocks = 8;
  soak.base.engine.eia.learn_threshold = 2;
  soak.base.engine.eia.lifecycle.max_idle_ms = 12 * util::kHour;
  soak.wave_gap_ms = util::kDay;
  soak.waves = smoke ? 3 : 6;
  soak.resizes = {{.before_wave = 1, .shards = 4}, {.before_wave = 2, .shards = 1}};
  if (!smoke) soak.resizes.push_back({.before_wave = 4, .shards = 8});

  std::printf("=== lifecycle soak: %d waves, %zu resizes, gap %llu ms, seed %llu ===\n",
              soak.waves, soak.resizes.size(),
              static_cast<unsigned long long>(soak.wave_gap_ms),
              static_cast<unsigned long long>(soak.base.seed));
  const auto churned = sim::run_soak(soak);
  auto static_config = soak;
  static_config.resizes.clear();
  const auto baseline = sim::run_soak(static_config);

  for (std::size_t w = 0; w < churned.waves.size(); ++w) {
    print_wave("churned", churned.waves[w]);
    print_wave("static", baseline.waves[w]);
  }
  std::printf("resizes %llu, migrated %llu entries, pause p99 %.1f us, "
              "expired %llu, relearned %llu\n",
              static_cast<unsigned long long>(churned.resizes),
              static_cast<unsigned long long>(churned.migrated_entries),
              churned.resize_pause_p99_us,
              static_cast<unsigned long long>(churned.entries_expired),
              static_cast<unsigned long long>(churned.entries_relearned));

  // The regression gates: churn must be quality-neutral over the horizon.
  int failures = 0;
  const auto require = [&](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "lifecycle_soak: FAIL: %s\n", what);
      ++failures;
    }
  };
  require(churned.resizes == soak.resizes.size(),
          "a scheduled live resize did not complete");
  require(churned.migrated_entries > 0, "resizes migrated no engine state");
  require(churned.entries_expired > 0,
          "aging never fired across day-long idle gaps");
  require(churned.min_detection_rate() > 0.0, "no attacks detected at all");
  double max_benign_delta = 0;
  for (std::size_t w = 0; w < churned.waves.size(); ++w) {
    const auto& c = churned.waves[w];
    const auto& b = baseline.waves[w];
    require(c.detection_rate >= b.detection_rate,
            "churned wave detected less than the static-pool baseline");
    max_benign_delta =
        std::max(max_benign_delta, c.benign_suspect_rate - b.benign_suspect_rate);
  }
  require(max_benign_delta <= 0.01,
          "churn pushed >1% extra benign flows into the suspect path");

  std::string doc = "{\n  \"bench\": \"lifecycle\",\n";
  doc += "  \"seed\": " + std::to_string(soak.base.seed) + ",\n";
  doc += "  \"waves\": " + std::to_string(soak.waves) + ",\n";
  doc += "  \"wave_gap_ms\": " + std::to_string(soak.wave_gap_ms) + ",\n";
  doc += "  \"runs\": [\n";
  for (const auto& wave : churned.waves) doc += wave_doc("churned", wave) + ",\n";
  for (const auto& wave : baseline.waves) doc += wave_doc("static", wave) + ",\n";
  // The horizon summary row (the keys scripts/bench_summary.py collates).
  doc += "    {\"mode\": \"summary\"";
  doc += ", \"resizes\": " + std::to_string(churned.resizes);
  doc += ", \"migrated_entries\": " + std::to_string(churned.migrated_entries);
  doc += ", \"resize_pause_p99_us\": " + obs::format_number(churned.resize_pause_p99_us);
  doc += ", \"entries_expired\": " + std::to_string(churned.entries_expired);
  doc += ", \"entries_relearned\": " + std::to_string(churned.entries_relearned);
  doc += ", \"min_detection_rate\": " + obs::format_number(churned.min_detection_rate());
  doc += ", \"benign_suspect_delta\": " + obs::format_number(max_benign_delta);
  doc += "}\n  ],\n";
  doc += "  \"failures\": " + std::to_string(failures) + "\n}\n";

  const auto out_path = args.value_or("out", "BENCH_lifecycle.json");
  std::ofstream out(out_path, std::ios::trunc);
  out << doc;
  if (!out) {
    std::fprintf(stderr, "lifecycle_soak: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return failures == 0 ? 0 : 1;
}

// Throughput of the threaded ingest pipeline (src/ingest) against the
// serial LiveCollector loop on the same exported datagram stream.
//
// The serial baseline is flowtools::LiveCollector the way app/node drives
// it without --ingest-threads: one thread interleaving socket polling,
// NetFlow v5 decode, and engine processing. The threaded runs put
// receiver thread(s) -- each decoding inline and dispatching directly
// into the ShardedRuntime as its own producer (no decode-thread hop) --
// on the same stream and report records/sec plus the pipeline's loss
// accounting (kernel drops, shed datagrams, sequence gaps). On a
// single-core host the speedup mostly measures handoff overhead --
// hardware_threads is in the JSON so readers can judge -- but the
// correctness cross-checks (identical attack-verdict counts at one and
// several receivers, zero steady-state heap allocations in the
// receive/decode hot path, no queue_ingest spans left in the trace)
// hold at any core count and fail the run when violated.
//
// Usage:
//   ingest_throughput [--smoke]           # small preset, used by ctest
//                     [--flows 3000]      # normal flows in the stream
//                     [--ingest-threads 1]
//                     [--threads 2]       # runtime shards
//                     [--out BENCH_ingest.json]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <string>
#include <thread>
#include <vector>

// Sanitizer builds own operator new/delete (replacing them breaks ASan's
// alloc/dealloc matching) and skew wall-clock ratios; the allocation probe
// and the perf gates are release-lane checks only.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define INFILTER_BENCH_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define INFILTER_BENCH_SANITIZED 1
#endif
#endif
#ifndef INFILTER_BENCH_SANITIZED
#define INFILTER_BENCH_SANITIZED 0
#endif

// Global operator new/delete overrides: count every heap allocation made by
// this binary so the probe section can prove the steady-state
// receive -> ring -> decode -> dispatch path allocates nothing per
// datagram. Counting only; allocation still goes through malloc/free.
namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};

#if !INFILTER_BENCH_SANITIZED
void* counted_alloc(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}
#endif
}  // namespace

#if !INFILTER_BENCH_SANITIZED
void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#endif

#include "dagflow/dagflow.h"
#include "flowtools/udp.h"
#include "ingest/ingest.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "traffic/attacks.h"
#include "traffic/normal.h"
#include "util/args.h"

using namespace infilter;
using namespace std::chrono_literals;
using Clock = std::chrono::steady_clock;

namespace {

/// The ingress id both paths attribute the stream to, so the EIA tables
/// see identical keys regardless of which ephemeral port got bound.
constexpr core::IngressId kIngress = 9001;

struct Workload {
  std::vector<std::vector<std::uint8_t>> datagrams;
  std::size_t flows = 0;
  std::vector<netflow::V5Record> training;
};

/// Normal traffic from source 0's Table 3 blocks plus a spoofed Slammer
/// sweep -- the same shape as the testbed streams, exported as v5
/// datagrams so both paths start from bytes on a socket.
Workload make_workload(std::size_t normal_flows) {
  Workload w;
  traffic::NormalTrafficModel model;
  util::Rng rng{21};
  {
    const auto trace = model.generate(normal_flows, 0, rng);
    dagflow::Dagflow source(
        dagflow::DagflowConfig{},
        dagflow::AddressPool::from_allocation(dagflow::make_allocation(10, 100, 0, 0)[0]),
        9);
    const auto labeled = source.replay(trace);
    w.flows += labeled.size();
    for (auto& datagram : source.export_datagrams(labeled, 1000)) {
      w.datagrams.push_back(std::move(datagram));
    }
  }
  {
    traffic::AttackConfig attack_config;
    attack_config.companion_fraction = 0;
    const auto worm = traffic::generate_attack(traffic::AttackKind::kSlammer,
                                               attack_config, normal_flows / 2, rng);
    dagflow::Dagflow attacker(
        dagflow::DagflowConfig{},
        dagflow::AddressPool::from_subblocks({*net::SubBlock::parse("70a")}), 10);
    const auto labeled = attacker.replay(worm);
    w.flows += labeled.size();
    for (auto& datagram : attacker.export_datagrams(labeled, 2000)) {
      w.datagrams.push_back(std::move(datagram));
    }
  }
  {
    const auto trace = model.generate(600, 0, rng);
    dagflow::Dagflow replayer(
        dagflow::DagflowConfig{},
        dagflow::AddressPool::from_subblocks({*net::SubBlock::parse("1a")}), 7);
    for (const auto& labeled : replayer.replay(trace)) {
      w.training.push_back(labeled.record);
    }
  }
  return w;
}

core::EngineConfig engine_config() {
  core::EngineConfig engine;
  engine.cluster.bits_per_feature = 48;
  engine.seed = 5;
  return engine;
}

struct Measurement {
  double seconds = 0;
  double records_per_sec = 0;
  std::uint64_t attacks = 0;
  ingest::IngestStats ingest;  ///< zero-initialized for the serial run
  int producers = 0;           ///< runtime producer slots (= receiver threads)
  std::uint64_t shard_peak_min = 0;  ///< min/max over shards of peak ring
  std::uint64_t shard_peak_max = 0;  ///< occupancy during the run
};

/// The serial baseline: LiveCollector + one engine on one thread, the
/// exact loop app/node runs without --ingest-threads.
Measurement run_serial(const Workload& w) {
  auto collector = flowtools::LiveCollector::bind({0});
  if (!collector) {
    std::fprintf(stderr, "serial bind: %s\n", collector.error().message.c_str());
    std::exit(1);
  }
  core::InFilterEngine engine(engine_config());
  for (const auto& block : dagflow::eia_range(0).expand()) {
    engine.add_expected(kIngress, block.prefix());
  }
  engine.train(w.training);

  auto sender = flowtools::UdpSender::create();
  const auto port = collector->ports()[0];

  Measurement m;
  std::size_t consumed = 0;
  const auto process_new = [&] {
    const auto& flows = collector->capture().flows();
    for (; consumed < flows.size(); ++consumed) {
      const auto& flow = flows[consumed];
      const auto verdict = engine.process(flow.record, kIngress, flow.record.last);
      m.attacks += verdict.attack ? 1 : 0;
    }
  };

  const auto start = Clock::now();
  for (std::size_t i = 0; i < w.datagrams.size(); ++i) {
    (void)sender->send(port, w.datagrams[i]);
    // Interleave receive/decode/analyze, like the monitor's poll loop --
    // and keep the kernel queue shallow so nothing is lost to overflow.
    if (i % 32 == 31) {
      (void)collector->poll_once(0);
      process_new();
    }
  }
  while (consumed < w.flows) {
    (void)collector->poll_once(1);
    process_new();
  }
  m.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  m.records_per_sec =
      m.seconds > 0 ? static_cast<double>(w.flows) / m.seconds : 0;
  return m;
}

/// Sends the whole stream into a live pipeline, round-robining datagrams
/// over the bound ports (so every receiver thread sees traffic) and
/// pacing against the received count so tiny test arenas never push loss
/// into the kernel.
void send_paced(flowtools::UdpSender& sender, const ingest::IngestPipeline& pipeline,
                const std::vector<std::uint16_t>& ports, const Workload& w,
                std::uint64_t base) {
  std::uint64_t sent = 0;
  for (const auto& datagram : w.datagrams) {
    (void)sender.send(ports[sent % ports.size()], datagram);
    ++sent;
    while (pipeline.stats().datagrams_received + 256 < base + sent) {
      std::this_thread::sleep_for(50us);
    }
  }
  while (pipeline.stats().datagrams_received < base + sent) {
    std::this_thread::sleep_for(200us);
  }
}

/// Receiver thread(s) dispatching directly into a sharded runtime on the
/// same bytes (receiver i is runtime producer i; no decode thread).
/// `tracer` (optional) attaches the flight recorder to every stage -- the
/// overhead runs pass it disabled, the journey run enabled. `repeats`
/// replays the datagram stream that many times inside the measured window,
/// stretching sub-millisecond smoke workloads into something a throughput
/// *ratio* can be judged on (sequence gaps across replays are expected and
/// not counted against the run).
Measurement run_threaded(const Workload& w, int receivers, int shards,
                         obs::Tracer* tracer = nullptr, int repeats = 1) {
  runtime::RuntimeConfig runtime_config;
  runtime_config.shards = shards;
  runtime_config.producers = std::max(1, receivers);
  runtime_config.engine = engine_config();
  runtime_config.tracer = tracer;
  std::atomic<std::uint64_t> attacks{0};
  runtime::ShardedRuntime rt(
      runtime_config, nullptr,
      [&](const runtime::FlowItem&, const core::Verdict& verdict) {
        if (verdict.attack) attacks.fetch_add(1, std::memory_order_relaxed);
      });
  for (const auto& block : dagflow::eia_range(0).expand()) {
    rt.add_expected(kIngress, block.prefix());
  }
  rt.train(w.training);

  ingest::IngestConfig config;
  config.ports.assign(static_cast<std::size_t>(std::max(1, receivers)), 0);
  config.ingress_ids.assign(config.ports.size(), kIngress);
  config.receiver_threads = receivers;
  config.tracer = tracer;
  auto pipeline = ingest::IngestPipeline::create(config, rt);
  if (!pipeline) {
    std::fprintf(stderr, "pipeline: %s\n", pipeline.error().message.c_str());
    std::exit(1);
  }
  auto sender = flowtools::UdpSender::create();
  const auto bound = (*pipeline)->ports();

  Measurement m;
  const auto start = Clock::now();
  for (int r = 0; r < repeats; ++r) {
    send_paced(*sender, **pipeline, bound, w, r * w.datagrams.size());
  }
  (*pipeline)->quiesce([&] { rt.flush(); });
  m.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  m.records_per_sec =
      m.seconds > 0 ? static_cast<double>(w.flows * repeats) / m.seconds : 0;
  m.attacks = attacks.load(std::memory_order_relaxed);
  m.ingest = (*pipeline)->stats();
  m.producers = static_cast<int>(rt.producer_count());
  const auto peaks = rt.shard_queue_peaks();
  if (!peaks.empty()) {
    m.shard_peak_min = *std::min_element(peaks.begin(), peaks.end());
    m.shard_peak_max = *std::max_element(peaks.begin(), peaks.end());
  }
  (*pipeline)->stop();
  rt.shutdown();
  return m;
}

/// The allocation probe: a pipeline with a null dispatcher isolates the
/// receive -> decode -> dispatch path. Pass 1 warms the thread-local
/// working sets; pass 2 over the same stream must not touch the heap at
/// all.
/// The flight recorder rides along *enabled* at sample_every=1 -- its ring
/// memory is allocated at lane registration (warm time), so even the
/// maximally-traced steady state must stay off the heap.
std::uint64_t probe_steady_allocs(const Workload& w) {
  obs::TracerConfig trace_config;
  trace_config.sample_every = 1;
  trace_config.enabled = true;
  obs::Tracer tracer(trace_config);
  ingest::IngestConfig config;
  config.ports = {0};
  config.ingress_ids = {kIngress};
  config.tracer = &tracer;
  auto pipeline = ingest::IngestPipeline::create(
      config,
      [](std::span<const runtime::FlowItem> items, int) { return items.size(); });
  if (!pipeline) {
    std::fprintf(stderr, "probe pipeline: %s\n", pipeline.error().message.c_str());
    std::exit(1);
  }
  auto sender = flowtools::UdpSender::create();
  const auto bound = (*pipeline)->ports();

  send_paced(*sender, **pipeline, bound, w, 0);  // warm pass
  (*pipeline)->drain();

  const auto before = g_heap_allocs.load(std::memory_order_relaxed);
  send_paced(*sender, **pipeline, bound, w, w.datagrams.size());
  (*pipeline)->drain();
  const auto allocs = g_heap_allocs.load(std::memory_order_relaxed) - before;
  (*pipeline)->stop();
  return allocs;
}

std::string ingest_json(const ingest::IngestStats& s) {
  std::string out;
  out += "\"kernel_drops\": " + std::to_string(s.kernel_drops);
  out += ", \"dropped_oldest\": " + std::to_string(s.dropped_oldest);
  out += ", \"records_shed\": " + std::to_string(s.records_shed);
  out += ", \"sequence_gaps\": " + std::to_string(s.sequence_gaps);
  out += ", \"socket_errors\": " + std::to_string(s.socket_errors);
  out += ", \"pinned_threads\": " + std::to_string(s.pinned_threads);
  return out;
}

/// Per-run shard/producer occupancy fields shared by the threaded runs.
std::string occupancy_json(const Measurement& m) {
  std::string out;
  out += "\"producers\": " + std::to_string(m.producers);
  out += ", \"shard_queue_peak_min\": " + std::to_string(m.shard_peak_min);
  out += ", \"shard_queue_peak_max\": " + std::to_string(m.shard_peak_max);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto parsed = util::Args::parse(argc, argv, {"smoke"});
  if (!parsed) {
    std::fprintf(stderr, "ingest_throughput: %s\n", parsed.error().message.c_str());
    return 1;
  }
  const auto& args = *parsed;
  const bool smoke = args.has("smoke");

  const auto flows = static_cast<std::size_t>(
      args.int_or("flows", smoke ? 400 : 3000));
  const int receivers = static_cast<int>(args.int_or("ingest-threads", 1));
  const int shards = static_cast<int>(args.int_or("threads", 2));

  std::printf("generating workload (%zu normal flows)...\n", flows);
  const auto workload = make_workload(flows);
  std::printf("replaying %zu datagrams / %zu records\n",
              workload.datagrams.size(), workload.flows);

  const auto serial = run_serial(workload);
  std::printf("serial_collector: %.0f records/sec (%llu attack verdicts)\n",
              serial.records_per_sec,
              static_cast<unsigned long long>(serial.attacks));

  const auto threaded = run_threaded(workload, receivers, shards);
  std::printf(
      "threaded_ingest (%d receiver(s) direct -> %d shards): %.0f records/sec "
      "(%.2fx serial, %llu attack verdicts, %llu kernel drops)\n",
      receivers, shards, threaded.records_per_sec,
      serial.records_per_sec > 0 ? threaded.records_per_sec / serial.records_per_sec
                                 : 0.0,
      static_cast<unsigned long long>(threaded.attacks),
      static_cast<unsigned long long>(threaded.ingest.kernel_drops));

  // Multi-producer run: several receivers dispatching concurrently into
  // the same shard rings. The verdict cross-check below pins the
  // multi-producer merge to the serial answer.
  const int receivers_mp = std::max(2, receivers);
  const auto threaded_mp = run_threaded(workload, receivers_mp, shards);
  std::printf(
      "threaded_ingest_multi (%d receivers direct -> %d shards): %.0f "
      "records/sec (%llu attack verdicts, shard peaks %llu..%llu)\n",
      receivers_mp, shards, threaded_mp.records_per_sec,
      static_cast<unsigned long long>(threaded_mp.attacks),
      static_cast<unsigned long long>(threaded_mp.shard_peak_min),
      static_cast<unsigned long long>(threaded_mp.shard_peak_max));

  // Gate: tracing compiled in and attached but *disabled* must cost at most
  // 2% throughput against the untraced pipeline (the disabled hot path is
  // one relaxed load + branch per hop). Wall-clock over loopback UDP is far
  // noisier than 2%, so each side replays the stream enough times to spend
  // tens of milliseconds in the measured window, the pair is measured up to
  // three times alternating, and the best throughput either side reached is
  // judged (noise only ever subtracts from a best-of).
  const int repeats = std::max(
      1, static_cast<int>(0.15 * threaded.records_per_sec /
                          static_cast<double>(std::max<std::size_t>(1, workload.flows))));
  double best_untraced = 0.0;
  double best_disabled = 0.0;
  double overhead_ratio = 0.0;
  Measurement traced_off;
  for (int attempt = 0; attempt < 4 && overhead_ratio < 0.98; ++attempt) {
    best_untraced = std::max(
        best_untraced,
        run_threaded(workload, receivers, shards, nullptr, repeats).records_per_sec);
    obs::Tracer off;  // TracerConfig{}.enabled == false
    traced_off = run_threaded(workload, receivers, shards, &off, repeats);
    best_disabled = std::max(best_disabled, traced_off.records_per_sec);
    if (best_untraced > 0) overhead_ratio = best_disabled / best_untraced;
  }
  std::printf("tracer disabled: %.0f records/sec best-of (%.3fx untraced, %dx replay)\n",
              best_disabled, overhead_ratio, repeats);

  // The journey run: every record traced (sample_every=1), spans exported
  // as Chrome trace-event JSON for Perfetto and cross-checked offline by
  // scripts/bench_summary.py --validate-trace against the e2e histogram.
  obs::TracerConfig trace_config;
  trace_config.sample_every = 1;
  trace_config.ring_capacity = 1 << 17;  // hold the whole run; drops gate below
  trace_config.enabled = true;
  obs::Tracer tracer(trace_config);
  const auto traced = run_threaded(workload, receivers, shards, &tracer);
  const auto trace_snapshot = tracer.snapshot();
  const auto* e2e = trace_snapshot.histogram("infilter_e2e_latency_us");
  std::printf(
      "tracer enabled (1-in-1): %.0f records/sec, %llu journeys, e2e p50 "
      "%.2fus p99 %.2fus, %llu span events (%llu dropped)\n",
      traced.records_per_sec,
      static_cast<unsigned long long>(e2e != nullptr ? e2e->count : 0),
      e2e != nullptr ? e2e->quantile(0.50) : 0.0,
      e2e != nullptr ? e2e->quantile(0.99) : 0.0,
      static_cast<unsigned long long>(tracer.events_emitted()),
      static_cast<unsigned long long>(tracer.events_dropped()));
  const auto trace_path = args.value_or("trace-out", "BENCH_ingest_trace.json");
  const auto trace_json = tracer.chrome_trace_json();
  {
    std::ofstream trace_file(trace_path, std::ios::trunc);
    trace_file << trace_json;
    if (!trace_file) {
      std::fprintf(stderr, "ingest_throughput: cannot write %s\n", trace_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", trace_path.c_str());
  }

  const auto steady_allocs = probe_steady_allocs(workload);
  std::printf("steady-state heap allocations over %zu datagrams: %llu\n",
              workload.datagrams.size(),
              static_cast<unsigned long long>(steady_allocs));

  std::string doc = "{\n  \"bench\": \"ingest\",\n";
  doc += "  \"hardware_threads\": " +
         std::to_string(std::thread::hardware_concurrency()) + ",\n";
  doc += "  \"datagrams\": " + std::to_string(workload.datagrams.size()) + ",\n";
  doc += "  \"records\": " + std::to_string(workload.flows) + ",\n";
  doc += "  \"runs\": [\n    {\"mode\": \"serial_collector\", \"seconds\": " +
         obs::format_number(serial.seconds) +
         ", \"records_per_sec\": " + obs::format_number(serial.records_per_sec) +
         ", \"attack_verdicts\": " + std::to_string(serial.attacks) + "},\n";
  doc += "    {\"mode\": \"threaded_ingest\", \"receiver_threads\": " +
         std::to_string(receivers) + ", \"shards\": " + std::to_string(shards) +
         ", \"seconds\": " + obs::format_number(threaded.seconds) +
         ", \"records_per_sec\": " + obs::format_number(threaded.records_per_sec) +
         ", \"speedup_vs_serial\": " +
         obs::format_number(serial.records_per_sec > 0
                                ? threaded.records_per_sec / serial.records_per_sec
                                : 0.0) +
         ", \"attack_verdicts\": " + std::to_string(threaded.attacks) + ", " +
         occupancy_json(threaded) + ", " + ingest_json(threaded.ingest) + "},\n";
  doc += "    {\"mode\": \"threaded_ingest_multi_receiver\", \"receiver_threads\": " +
         std::to_string(receivers_mp) + ", \"shards\": " + std::to_string(shards) +
         ", \"seconds\": " + obs::format_number(threaded_mp.seconds) +
         ", \"records_per_sec\": " + obs::format_number(threaded_mp.records_per_sec) +
         ", \"attack_verdicts\": " + std::to_string(threaded_mp.attacks) + ", " +
         occupancy_json(threaded_mp) + ", " + ingest_json(threaded_mp.ingest) +
         "},\n";
  doc += "    {\"mode\": \"threaded_ingest_tracer_disabled\", \"seconds\": " +
         obs::format_number(traced_off.seconds) +
         ", \"records_per_sec\": " + obs::format_number(best_disabled) +
         ", \"throughput_vs_untraced\": " + obs::format_number(overhead_ratio) +
         ", \"replays\": " + std::to_string(repeats) + "},\n";
  doc += "    {\"mode\": \"threaded_ingest_traced\", \"sample_every\": 1"
         ", \"seconds\": " + obs::format_number(traced.seconds) +
         ", \"records_per_sec\": " + obs::format_number(traced.records_per_sec) +
         ", \"attack_verdicts\": " + std::to_string(traced.attacks) +
         "}\n  ],\n";
  doc += "  \"trace\": {\"out\": \"" + trace_path +
         "\", \"journeys\": " + std::to_string(e2e != nullptr ? e2e->count : 0) +
         ", \"e2e_sum_us\": " + obs::format_number(e2e != nullptr ? e2e->sum : 0.0) +
         ", \"span_events\": " + std::to_string(tracer.events_emitted()) +
         ", \"span_events_dropped\": " + std::to_string(tracer.events_dropped()) +
         "},\n";
  doc += "  \"steady_state_heap_allocs\": " + std::to_string(steady_allocs) + ",\n";
  doc += "  \"steady_state_datagrams\": " + std::to_string(workload.datagrams.size()) +
         "\n}\n";

  const auto out_path = args.value_or("out", "BENCH_ingest.json");
  std::ofstream out(out_path, std::ios::trunc);
  out << doc;
  if (!out) {
    std::fprintf(stderr, "ingest_throughput: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());

  // Correctness gates (perf numbers are informational on small hosts):
  // the threaded path must analyze every record, agree with the serial
  // verdict stream, and keep the hot path off the heap.
  if (threaded.ingest.records_dispatched != workload.flows) {
    std::fprintf(stderr, "FAIL: %llu of %zu records dispatched\n",
                 static_cast<unsigned long long>(threaded.ingest.records_dispatched),
                 workload.flows);
    return 1;
  }
  if (threaded.attacks != serial.attacks) {
    std::fprintf(stderr, "FAIL: attack verdicts diverged (serial %llu, threaded %llu)\n",
                 static_cast<unsigned long long>(serial.attacks),
                 static_cast<unsigned long long>(threaded.attacks));
    return 1;
  }
  if (threaded_mp.ingest.records_dispatched != workload.flows ||
      threaded_mp.attacks != serial.attacks) {
    std::fprintf(stderr,
                 "FAIL: multi-receiver run diverged (%llu of %zu records, "
                 "serial %llu vs multi %llu attack verdicts)\n",
                 static_cast<unsigned long long>(
                     threaded_mp.ingest.records_dispatched),
                 workload.flows, static_cast<unsigned long long>(serial.attacks),
                 static_cast<unsigned long long>(threaded_mp.attacks));
    return 1;
  }
  // Receiver-direct dispatch removed the receiver -> decode-thread hop;
  // nothing in the pipeline may emit a queue_ingest span anymore.
  if (trace_json.find("\"queue_ingest\"") != std::string::npos) {
    std::fprintf(stderr, "FAIL: exported trace still contains queue_ingest spans\n");
    return 1;
  }
  if (!INFILTER_BENCH_SANITIZED && steady_allocs != 0) {
    std::fprintf(stderr,
                 "FAIL: receive/decode hot path made %llu heap allocations\n",
                 static_cast<unsigned long long>(steady_allocs));
    return 1;
  }
  // Flight-recorder gates: disabled tracing within 2% of untraced, and the
  // fully-traced run must capture every record's journey losslessly (the
  // span-sum vs histogram identity is then checked offline against the
  // exported JSON by scripts/bench_summary.py --validate-trace).
  if (!INFILTER_BENCH_SANITIZED && overhead_ratio < 0.98) {
    std::fprintf(stderr,
                 "FAIL: tracer-disabled throughput %.3fx untraced (< 0.98)\n",
                 overhead_ratio);
    return 1;
  }
  if (e2e == nullptr || e2e->count != workload.flows) {
    std::fprintf(stderr, "FAIL: %llu of %zu journeys reached a verdict\n",
                 static_cast<unsigned long long>(e2e != nullptr ? e2e->count : 0),
                 workload.flows);
    return 1;
  }
  if (tracer.events_dropped() != 0) {
    std::fprintf(stderr, "FAIL: %llu span events dropped\n",
                 static_cast<unsigned long long>(tracer.events_dropped()));
    return 1;
  }
  if (traced.attacks != serial.attacks) {
    std::fprintf(stderr,
                 "FAIL: traced attack verdicts diverged (serial %llu, traced %llu)\n",
                 static_cast<unsigned long long>(serial.attacks),
                 static_cast<unsigned long long>(traced.attacks));
    return 1;
  }
  return 0;
}

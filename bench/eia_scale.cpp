// EIA backend scale sweep: exact interval sets vs the memory-bounded Bloom
// backend (core/eia_backend.h), at 10^5 / 10^6 / 10^7 learned /24s.
//
// Two sections, both regression gates (exit 1 on violation), not just
// number printers:
//
//  1. Scale sweep. One ingress learns a deterministic pseudo-random subset
//     of the /24 space at each target scale, once per backend. We record
//     memory_bytes(), lookup ns/flow over a fixed probe stream, and the
//     Bloom false-positive ratio measured against the exact backend's
//     ground-truth answers on the same probes. Gates (at scales up to
//     10^6, where the acceptance bound applies): Bloom memory <= 10% of
//     exact, Bloom lookup <= 1.25x exact (the committed full run shows
//     <= 1.0x; the in-binary gate leaves headroom for noisy CI machines),
//     measured FP within the stated ~4-bits-per-key budget (<= 15%).
//
//  2. Testbed quality. The Table-3 testbed runs twice on the same seed --
//     field-identical flow streams -- once per backend, with the Bloom
//     budget sized for the ~8.2M /24s the Table-3 preloads expand to.
//     Gates: Bloom detects at least every instance exact detects, and the
//     benign false-suspect rate moves by at most the documented budget
//     (+1% absolute). The bloom run's
//     infilter_eia_bloom_false_suspects_total metric (ground-truth-labeled
//     benign suspects; engine.h) is reported alongside the exact run's
//     benign-suspect count, so the Bloom-attributable share is one
//     subtraction away.
//
// Usage:
//   eia_scale [--smoke] [--seed N] [--out BENCH_eia_scale.json]

#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/eia.h"
#include "obs/export.h"
#include "sim/testbed.h"
#include "util/args.h"
#include "util/rng.h"

using namespace infilter;

namespace {

constexpr core::IngressId kIngress = 9001;
constexpr std::uint32_t kSlash24Count = 1u << 24;
/// The Table-3 preloads expand to 10 sources x 100 /11 sub-blocks = ~8.2M
/// /24 inserts; 2^26 bits is ~8 bits per key (~3% FP at k=3).
constexpr std::uint64_t kTestbedBloomBits = 1ull << 26;

/// Deterministic membership: /24 index k is learned iff its hash clears
/// the density threshold. Ascending iteration gives the exact backend its
/// cheap append-path inserts; at high density adjacent /24s coalesce into
/// ranges, exactly the merging a real deployment would see.
bool in_universe(std::uint64_t seed, std::uint32_t slash24, std::uint64_t target) {
  return (util::SplitMix64{seed ^ (0x5ca1eULL << 32) ^ slash24}.next() &
          (kSlash24Count - 1)) < target;
}

core::EiaTable build_table(const core::EiaBackendConfig& backend,
                           std::uint64_t seed, std::uint64_t target,
                           std::uint64_t* learned) {
  core::EiaTableConfig config;
  config.backend = backend;
  core::EiaTable table(config);
  std::uint64_t count = 0;
  for (std::uint32_t k = 0; k < kSlash24Count; ++k) {
    if (!in_universe(seed, k, target)) continue;
    table.add_expected(kIngress, net::Prefix{net::IPv4Address{k << 8}, 24});
    ++count;
  }
  *learned = count;
  return table;
}

net::IPv4Address probe_address(std::uint64_t seed, std::uint64_t i) {
  return net::IPv4Address{static_cast<std::uint32_t>(
      util::SplitMix64{seed ^ (0xbe11ULL << 32) ^ i}.next())};
}

struct LookupResult {
  double ns_per_flow = 0;
  std::uint64_t hits = 0;
};

/// Times is_expected over `probes` pseudo-random addresses (learned and
/// unlearned /24s mixed at the sweep's density). One untimed pass warms
/// the structure; the second, timed pass is what we report.
LookupResult time_lookups(const core::EiaTable& table, std::uint64_t seed,
                          std::uint64_t probes) {
  LookupResult out;
  for (int pass = 0; pass < 2; ++pass) {
    std::uint64_t hits = 0;
    const auto start = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < probes; ++i) {
      hits += table.is_expected(kIngress, probe_address(seed, i)) ? 1 : 0;
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    out.hits = hits;
    out.ns_per_flow =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()) /
        static_cast<double>(probes);
  }
  return out;
}

/// Bloom false-positive ratio over the probe stream, with the exact
/// backend as ground truth: FPs / exact-negative probes.
double measured_fp_ratio(const core::EiaTable& exact, const core::EiaTable& bloom,
                         std::uint64_t seed, std::uint64_t probes) {
  std::uint64_t negatives = 0;
  std::uint64_t false_positives = 0;
  for (std::uint64_t i = 0; i < probes; ++i) {
    const auto ip = probe_address(seed, i);
    if (exact.is_expected(kIngress, ip)) continue;
    ++negatives;
    if (bloom.is_expected(kIngress, ip)) ++false_positives;
  }
  return negatives == 0
             ? 0.0
             : static_cast<double>(false_positives) / static_cast<double>(negatives);
}

struct SweepRow {
  std::string mode;
  std::uint64_t scale = 0;
  std::uint64_t learned = 0;
  std::uint64_t memory_bytes = 0;
  double lookup_ns = 0;
  double hit_ratio = 0;
  // Bloom-only fields (zero on exact rows).
  std::uint64_t bloom_bits = 0;
  int bloom_hashes = 0;
  double memory_ratio = 0;
  double fill_ratio = 0;
  double fp_ratio = 0;
};

std::string sweep_row_json(const SweepRow& r) {
  std::string d = "    {\"mode\": \"" + r.mode + "\"";
  d += ", \"scale\": " + std::to_string(r.scale);
  d += ", \"learned_slash24s\": " + std::to_string(r.learned);
  d += ", \"memory_bytes\": " + std::to_string(r.memory_bytes);
  d += ", \"lookup_ns_per_flow\": " + obs::format_number(r.lookup_ns);
  d += ", \"lookup_hit_ratio\": " + obs::format_number(r.hit_ratio);
  if (r.bloom_bits != 0) {
    d += ", \"bloom_bits\": " + std::to_string(r.bloom_bits);
    d += ", \"bloom_hashes\": " + std::to_string(r.bloom_hashes);
    d += ", \"memory_ratio_vs_exact\": " + obs::format_number(r.memory_ratio);
    d += ", \"fill_ratio\": " + obs::format_number(r.fill_ratio);
    d += ", \"false_positive_ratio\": " + obs::format_number(r.fp_ratio);
  }
  d += "}";
  return d;
}

std::string testbed_row_json(const char* mode, const sim::ExperimentResult& r) {
  std::string d = "    {\"mode\": \"" + std::string(mode) + "\"";
  d += ", \"detection_rate\": " + obs::format_number(r.detection_rate());
  d += ", \"detected_instances\": " + std::to_string(r.detected_instances);
  d += ", \"attack_instances\": " + std::to_string(r.attack_instances);
  d += ", \"benign_suspects\": " + std::to_string(r.benign_suspects);
  d += ", \"benign_suspect_rate\": " + obs::format_number(r.benign_suspect_rate());
  d += ", \"false_positive_rate\": " + obs::format_number(r.false_positive_rate());
  d += ", \"bloom_false_suspects_total\": " +
       obs::format_number(r.metrics.value("infilter_eia_bloom_false_suspects_total"));
  d += ", \"eia_backend_bytes\": " +
       obs::format_number(r.metrics.value("infilter_eia_backend_bytes"));
  d += "}";
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  const auto parsed = util::Args::parse(argc, argv, {"smoke"});
  if (!parsed) {
    std::fprintf(stderr, "eia_scale: %s\n", parsed.error().message.c_str());
    return 1;
  }
  const auto& args = *parsed;
  const bool smoke = args.has("smoke");
  const auto seed = static_cast<std::uint64_t>(args.int_or("seed", 29));

  int failures = 0;
  const auto require = [&](bool ok, const std::string& what) {
    if (!ok) {
      std::fprintf(stderr, "eia_scale: FAIL: %s\n", what.c_str());
      ++failures;
    }
  };

  // -- Section 1: scale sweep ------------------------------------------
  const std::vector<std::uint64_t> scales =
      smoke ? std::vector<std::uint64_t>{100000}
            : std::vector<std::uint64_t>{100000, 1000000, 10000000};
  const std::uint64_t probes = smoke ? (1ull << 19) : (1ull << 21);

  std::printf("=== EIA backend scale sweep (seed %llu, %llu probes/scale) ===\n",
              static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(probes));
  std::printf("%-16s %12s %14s %12s %10s %8s\n", "mode", "learned", "memory",
              "ns/flow", "fp", "fill");

  std::vector<SweepRow> sweep;
  for (const std::uint64_t scale : scales) {
    SweepRow exact_row;
    exact_row.mode = "exact@" + std::to_string(scale);
    exact_row.scale = scale;
    core::EiaTable exact =
        build_table(core::EiaBackendConfig{}, seed, scale, &exact_row.learned);
    exact_row.memory_bytes = exact.memory_bytes();
    const auto exact_lookups = time_lookups(exact, seed, probes);
    exact_row.lookup_ns = exact_lookups.ns_per_flow;
    exact_row.hit_ratio = static_cast<double>(exact_lookups.hits) /
                          static_cast<double>(probes);

    core::EiaBackendConfig bloom_config;
    bloom_config.type = core::EiaBackendType::kBloom;
    // ~4 bits per target key, the smallest power-of-two budget that holds
    // the 10% memory bound against exact's ~8-byte ranges.
    bloom_config.bits = std::bit_ceil(4 * scale);
    bloom_config.hashes = 3;
    SweepRow bloom_row;
    bloom_row.mode = "bloom@" + std::to_string(scale);
    bloom_row.scale = scale;
    core::EiaTable bloom = build_table(bloom_config, seed, scale, &bloom_row.learned);
    bloom_row.memory_bytes = bloom.memory_bytes();
    bloom_row.bloom_bits = bloom_config.bits;
    bloom_row.bloom_hashes = bloom_config.hashes;
    const auto bloom_lookups = time_lookups(bloom, seed, probes);
    bloom_row.lookup_ns = bloom_lookups.ns_per_flow;
    bloom_row.hit_ratio = static_cast<double>(bloom_lookups.hits) /
                          static_cast<double>(probes);
    bloom_row.memory_ratio = static_cast<double>(bloom_row.memory_bytes) /
                             static_cast<double>(exact_row.memory_bytes);
    bloom_row.fill_ratio = bloom.fill_ratio();
    bloom_row.fp_ratio = measured_fp_ratio(exact, bloom, seed, probes);

    for (const SweepRow* r : {&exact_row, &bloom_row}) {
      std::printf("%-16s %12llu %14llu %12.1f %9.4f%% %7.3f\n", r->mode.c_str(),
                  static_cast<unsigned long long>(r->learned),
                  static_cast<unsigned long long>(r->memory_bytes), r->lookup_ns,
                  100 * r->fp_ratio, r->fill_ratio);
    }

    // The acceptance bound is stated at 10^6 learned prefixes; apply it at
    // every sweep scale up to there (10^7 exact degrades toward dense
    // ranges, so the ratio story changes -- reported, not gated).
    if (scale <= 1000000) {
      require(bloom_row.memory_bytes * 10 <= exact_row.memory_bytes,
              bloom_row.mode + ": memory " + std::to_string(bloom_row.memory_bytes) +
                  " exceeds 10% of exact's " +
                  std::to_string(exact_row.memory_bytes));
      require(bloom_row.lookup_ns <= exact_row.lookup_ns * 1.25,
              bloom_row.mode + ": lookup slower than 1.25x exact");
      require(bloom_row.fp_ratio <= 0.15,
              bloom_row.mode + ": measured FP above the 15% budget");
    }
    sweep.push_back(std::move(exact_row));
    sweep.push_back(std::move(bloom_row));
  }

  // -- Section 2: testbed quality delta --------------------------------
  sim::ExperimentConfig config;
  config.seed = seed ^ 0x7e57ULL;
  config.normal_flows_per_source = smoke ? 1500 : 6000;
  config.training_flows = smoke ? 600 : 1500;
  config.engine.cluster.bits_per_feature = smoke ? 48 : 144;

  std::printf("=== Testbed quality: exact vs bloom (seed %llu) ===\n",
              static_cast<unsigned long long>(config.seed));
  const auto exact_run = sim::run_experiment(config);
  config.engine.eia.backend.type = core::EiaBackendType::kBloom;
  config.engine.eia.backend.bits = kTestbedBloomBits;
  config.engine.eia.backend.hashes = 3;
  const auto bloom_run = sim::run_experiment(config);

  const auto print_run = [](const char* label, const sim::ExperimentResult& r) {
    std::printf("%-8s %6.1f%% %8d/%-3d benign-susp %9.4f%% fp %9.4f%%\n", label,
                100 * r.detection_rate(), r.detected_instances,
                r.attack_instances, 100 * r.benign_suspect_rate(),
                100 * r.false_positive_rate());
  };
  print_run("exact", exact_run);
  print_run("bloom", bloom_run);

  const double bloom_false_suspects =
      bloom_run.metrics.value("infilter_eia_bloom_false_suspects_total");
  const double benign_delta =
      bloom_run.benign_suspect_rate() - exact_run.benign_suspect_rate();
  std::printf("bloom false suspects (ground truth): %.0f over %llu benign "
              "(exact baseline %llu suspects); rate delta %+.4f%%\n",
              bloom_false_suspects,
              static_cast<unsigned long long>(bloom_run.benign_flows),
              static_cast<unsigned long long>(exact_run.benign_suspects),
              100 * benign_delta);

  require(bloom_run.detected_instances >= exact_run.detected_instances,
          "bloom backend detected fewer attack instances than exact");
  require(benign_delta <= 0.01,
          "bloom backend pushed >1% extra benign flows into the suspect path");
  require(bloom_run.false_positive_rate() <=
              exact_run.false_positive_rate() + 0.005,
          "bloom backend regressed the final false-positive rate");

  // -- JSON -------------------------------------------------------------
  std::string doc = "{\n  \"bench\": \"eia_scale\",\n";
  doc += "  \"seed\": " + std::to_string(seed) + ",\n";
  doc += "  \"smoke\": " + std::string(smoke ? "true" : "false") + ",\n";
  doc += "  \"probes_per_scale\": " + std::to_string(probes) + ",\n";
  doc += "  \"runs\": [\n";
  for (const auto& row : sweep) doc += sweep_row_json(row) + ",\n";
  doc += testbed_row_json("testbed_exact", exact_run) + ",\n";
  doc += testbed_row_json("testbed_bloom", bloom_run) + "\n  ],\n";
  doc += "  \"testbed_benign_suspect_delta\": " + obs::format_number(benign_delta) + ",\n";
  doc += "  \"failures\": " + std::to_string(failures) + "\n}\n";

  const auto out_path = args.value_or("out", "BENCH_eia_scale.json");
  std::ofstream out(out_path, std::ios::trunc);
  out << doc;
  if (!out) {
    std::fprintf(stderr, "eia_scale: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return failures == 0 ? 0 : 1;
}

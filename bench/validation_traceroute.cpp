// Reproduces Section 3.1.1: last-hop stability measured by periodic
// traceroutes from Looking-Glass sites to target networks.
//
//   paper, 24-hour run (30-min period, ~10,000 samples):
//       raw change 4.8%   aggregated change 0.4%
//   paper, 4-day run (60-min period, ~31,000 samples):
//       raw change 6.4%   aggregated change 0.6%
//
// Also prints the raw-vs-aggregated ablation (Figure 4's point: /24 + FQDN
// smoothing removes redundant/load-shared link flaps) and the full-path
// change rate, which dwarfs the last-hop rate [LABO][VPAX].

#include <cstdio>

#include "routing/studies.h"

using namespace infilter;
using routing::TracerouteStudyConfig;
using routing::TracerouteStudyResult;

namespace {

/// A single 30-day-scale run sees only a handful of BGP-relevant failure
/// events near 20 targets, so the aggregated statistic is high-variance;
/// average a few seeded runs (the paper measured once -- we report the
/// estimator's mean).
void print_run(const char* name, const TracerouteStudyConfig& base,
               double paper_raw, double paper_aggregated, int runs = 3) {
  TracerouteStudyResult total;
  TracerouteStudyConfig config = base;
  for (int run = 0; run < runs; ++run) {
    config.seed = base.seed + static_cast<std::uint64_t>(run) * 97;
    const auto result = run_traceroute_study(config);
    total.samples += result.samples;
    total.transitions += result.transitions;
    total.raw_changes += result.raw_changes;
    total.aggregated_changes += result.aggregated_changes;
    total.peer_as_changes += result.peer_as_changes;
    total.full_path_changes += result.full_path_changes;
  }
  std::printf("%s (%d seeded runs pooled)\n", name, runs);
  std::printf("  samples: %d per run, transitions compared: %d\n",
              total.samples / runs, total.transitions);
  std::printf("  %-34s paper %5.1f%%   measured %5.2f%%\n",
              "raw Peer/BR change rate:", paper_raw,
              100.0 * total.raw_change_rate());
  std::printf("  %-34s paper %5.1f%%   measured %5.2f%%\n",
              "aggregated (/24+FQDN) change rate:", paper_aggregated,
              100.0 * total.aggregated_change_rate());
  std::printf("  full-path change rate: %.1f%% (interior volatility, cf. [VPAX])\n",
              100.0 * total.full_path_change_rate());
  std::printf("  genuine peer-AS changes: %d\n\n", total.peer_as_changes);
}

}  // namespace

int main() {
  std::printf("=== Section 3.1.1: traceroute-based validation ===\n");
  std::printf("24 Looking-Glass sites x 20 targets, synthetic internet\n\n");

  TracerouteStudyConfig day;
  day.looking_glass_sites = 24;
  day.target_count = 20;
  day.period = 30 * util::kMinute;
  day.readings = 49;  // 24 hours at 30 minutes
  day.completion_probability = 0.45;
  day.seed = 311;
  print_run("24-hour run (30-minute period)", day, 4.8, 0.4);

  TracerouteStudyConfig four_days = day;
  four_days.period = 60 * util::kMinute;
  four_days.readings = 97;  // 4 days at 60 minutes
  four_days.completion_probability = 0.67;
  four_days.seed = 351;
  print_run("4-day run (60-minute period)", four_days, 6.4, 0.6);

  // Ablation: what each smoothing ingredient buys (Figure 4).
  std::printf("--- ablation: smoothing ingredients (24-hour configuration) ---\n");
  {
    TracerouteStudyConfig no_parallel = day;
    no_parallel.topology.parallel_link_fraction = 0.0;
    no_parallel.seed = 313;
    const auto result = run_traceroute_study(no_parallel);
    std::printf("  no parallel circuits:   raw %.2f%%  aggregated %.2f%%"
                "  (raw ~ aggregated: nothing to smooth)\n",
                100.0 * result.raw_change_rate(),
                100.0 * result.aggregated_change_rate());
  }
  {
    TracerouteStudyConfig all_cross = day;
    all_cross.topology.cross_subnet_fraction = 1.0;
    all_cross.seed = 314;
    const auto result = run_traceroute_study(all_cross);
    std::printf("  all circuits cross /24s: raw %.2f%%  aggregated %.2f%%"
                "  (FQDN smoothing carries the load)\n",
                100.0 * result.raw_change_rate(),
                100.0 * result.aggregated_change_rate());
  }
  return 0;
}

// Reproduces Figures 17, 18 and 19: false-positive behaviour under
// emulated route instability (Section 6.3.3), for the Basic and Enhanced
// configurations, plus the Table 2 allocations driving the emulation.
//
//   paper, Figure 17 (Basic):    FP rises with route-change level,
//                                reaching ~7.4% at 8% route change.
//   paper, Figure 18 (Enhanced): same trend, lower -- ~5.25% at 8%.
//   paper, Figure 19:            Enhanced cuts the Basic FP rate ~30%
//                                at 8% attack volume; detection stays
//                                ~100% (BI) vs ~80% (EI).

#include <cstdio>

#include "dagflow/allocation.h"
#include "sim/testbed.h"

using namespace infilter;

namespace {

void print_table2_sample() {
  std::printf("=== Table 2 (reproduced): allocations at 2%% route change ===\n");
  for (int index = 0; index < 2; ++index) {
    std::printf("Allocation %d:\n", index + 1);
    const auto alloc = dagflow::make_allocation(10, 100, 2, index);
    for (int s = 0; s < 10; ++s) {
      const auto& a = alloc[static_cast<std::size_t>(s)];
      std::printf("  S%-3d normal %s-%s  change", s + 1,
                  a.normal_set.front().notation().c_str(),
                  a.normal_set.back().notation().c_str());
      for (const auto& block : a.change_set) {
        std::printf(" %s", block.notation().c_str());
      }
      std::printf("\n");
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  print_table2_sample();

  sim::ExperimentConfig config;
  config.normal_flows_per_source = 8000;
  config.training_flows = 2200;
  config.engine.cluster.bits_per_feature = 144;
  config.seed = 633;
  const int runs = 3;
  const int route_levels[] = {1, 2, 4, 8};
  const double volumes[] = {0.02, 0.04, 0.08};

  sim::ClusterCache cache(config);
  // fp[mode][volume][route], detection likewise.
  double fp[2][3][4];
  double det[2][3][4];
  for (int mode = 0; mode < 2; ++mode) {
    config.engine.mode = mode == 0 ? core::EngineMode::kBasic
                                   : core::EngineMode::kEnhanced;
    for (int v = 0; v < 3; ++v) {
      for (int r = 0; r < 4; ++r) {
        config.attack_volume = volumes[v];
        config.route_change_blocks = route_levels[r];
        const auto result = sim::run_averaged(config, runs, &cache);
        fp[mode][v][r] = 100.0 * result.false_positive_rate;
        det[mode][v][r] = 100.0 * result.detection_rate;
      }
    }
  }

  const char* figures[2] = {
      "=== Figure 17: FP rate with route change -- Basic InFilter ===\n"
      "paper: rises with route change; ~7.4%% at 8%% change, 8%% attacks\n",
      "=== Figure 18: FP rate with route change -- Enhanced InFilter ===\n"
      "paper: same trend, ~30%% lower; ~5.25%% at 8%% change, 8%% attacks\n"};
  for (int mode = 0; mode < 2; ++mode) {
    std::printf("%s", figures[mode]);
    std::printf("%-14s %10s %10s %10s\n", "route change", "2% atk", "4% atk",
                "8% atk");
    for (int r = 0; r < 4; ++r) {
      std::printf("%-14d %9.2f%% %9.2f%% %9.2f%%\n", route_levels[r], fp[mode][0][r],
                  fp[mode][1][r], fp[mode][2][r]);
    }
    std::printf("\n");
  }

  std::printf("=== Figure 19: FP at 8%% attack volume, Basic vs Enhanced ===\n");
  std::printf("%-14s %12s %12s %12s\n", "route change", "Basic", "Enhanced",
              "reduction");
  for (int r = 0; r < 4; ++r) {
    const double basic = fp[0][2][r];
    const double enhanced = fp[1][2][r];
    std::printf("%-14d %11.2f%% %11.2f%% %11.0f%%\n", route_levels[r], basic, enhanced,
                basic > 0 ? 100.0 * (basic - enhanced) / basic : 0.0);
  }

  std::printf("\ndetection rate across route-change levels (8%% attacks):\n");
  std::printf("  paper: Basic ~100%% flat, Enhanced ~80%% flat\n");
  std::printf("  Basic:   ");
  for (int r = 0; r < 4; ++r) std::printf(" %5.1f%%", det[0][2][r]);
  std::printf("\n  Enhanced:");
  for (int r = 0; r < 4; ++r) std::printf(" %5.1f%%", det[1][2][r]);
  std::printf("\n");
  return 0;
}

// Reproduces Figures 15 and 16 and the Section 6.4 summary: detection rate
// and false-positive rate vs attack volume, for a single attack set
// (Section 6.3.1) and for attack sets at all ten peer ASs (the stress test
// of Section 6.3.2). Also prints the Table 1/Table 3 setup it runs on.
//
//   paper, Figure 15 (detection): single set ~83% flat across volumes;
//          10 attack sets drop to ~70%.
//   paper, Figure 16 (false positives): single set ~1-1.25%;
//          10 attack sets rise toward ~4%.

// Writes BENCH_detection.json: the headline rates per data point plus the
// engine's reconciled pipeline metrics (verdict counters, per-stage
// latency quantiles) for the detailed 8%-volume runs.

#include <cstdio>
#include <fstream>
#include <string>

#include "obs/export.h"
#include "sim/testbed.h"

using namespace infilter;

namespace {

/// Pulls the counters and latency quantiles that summarize one run out of
/// its final metrics snapshot.
std::string metrics_json(const obs::RegistrySnapshot& snapshot) {
  std::string out;
  const char* counters[] = {
      "infilter_flows_total",          "infilter_eia_hits_total",
      "infilter_eia_misses_total",     "infilter_scan_analyzed_total",
      "infilter_nns_assessed_total",   "infilter_verdict_legal_total",
      "infilter_verdict_attack_eia_total",  "infilter_verdict_attack_scan_total",
      "infilter_verdict_attack_nns_total",  "infilter_verdict_cleared_nns_total",
      "infilter_verdict_cleared_learned_total",
  };
  for (const char* name : counters) {
    out += "\"" + std::string(name) + "\": " + obs::format_number(snapshot.value(name)) +
           ", ";
  }
  const auto* process = snapshot.histogram("infilter_process_latency_us");
  if (process != nullptr && process->count > 0) {
    out += "\"process_p50_us\": " + obs::format_number(process->quantile(0.50)) + ", ";
    out += "\"process_p99_us\": " + obs::format_number(process->quantile(0.99)) + ", ";
  }
  if (out.size() >= 2) out.resize(out.size() - 2);  // trailing ", "
  return out;
}

}  // namespace

int main() {
  sim::ExperimentConfig config;
  config.normal_flows_per_source = 8000;
  config.training_flows = 2200;
  config.engine.mode = core::EngineMode::kEnhanced;
  config.engine.cluster.bits_per_feature = 144;  // the paper's d = 720
  config.seed = 615;
  const int runs = 3;

  std::printf("=== Setup (Tables 1 and 3) ===\n");
  std::printf("Table 1: %d publicly-routable /8 blocks -> %d /11 sub-blocks, "
              "first %d used\n",
              net::kSlash8BlockCount, net::kTotalSubBlocks, net::kUsedSubBlocks);
  for (int s = 0; s < config.sources; ++s) {
    std::printf("  Peer AS%-2d (port %d)  EIA %s\n", s + 1, config.first_port + s,
                dagflow::eia_range(s).notation().c_str());
  }
  std::printf("\n");

  sim::ClusterCache cache(config);
  struct Point {
    double volume;
    int sets;
    sim::AveragedResult result;
  };
  std::vector<Point> points;
  for (const int sets : {1, 10}) {
    for (const double volume : {0.02, 0.04, 0.08}) {
      config.attack_volume = volume;
      config.attacked_ingresses = sets;
      points.push_back({volume, sets, sim::run_averaged(config, runs, &cache)});
    }
  }

  std::printf("=== Figure 15: attack detection rate (%% of launched attacks) ===\n");
  std::printf("paper: single set ~83%% flat; 10 sets ~70%%\n");
  std::printf("%-26s %8s %8s %8s\n", "", "2%", "4%", "8%");
  for (const int sets : {1, 10}) {
    std::printf("%-26s", sets == 1 ? "single attack set" : "10 attack sets");
    for (const auto& p : points) {
      if (p.sets == sets) std::printf(" %7.1f%%", 100.0 * p.result.detection_rate);
    }
    std::printf("\n");
  }

  std::printf("\nflow-level attack detection (share of attack flows flagged):\n");
  for (const int sets : {1, 10}) {
    std::printf("%-26s", sets == 1 ? "single attack set" : "10 attack sets");
    for (const auto& p : points) {
      if (p.sets == sets) std::printf(" %7.1f%%", 100.0 * p.result.flow_detection_rate);
    }
    std::printf("\n");
  }

  std::printf("\nper-attack instances detected (8%% volume, run seed %llu):\n",
              static_cast<unsigned long long>(config.seed));
  std::vector<std::pair<int, sim::ExperimentResult>> detailed;
  for (const int sets : {1, 10}) {
    config.attack_volume = 0.08;
    config.attacked_ingresses = sets;
    config.seed = 615;
    const auto detail = sim::run_experiment(config, cache.get(config.seed));
    detailed.emplace_back(sets, detail);
    std::printf("  mean attack-initiation-to-detection latency: %.0f ms (virtual)\n",
                detail.mean_detection_latency_ms);
    std::printf("  %-18s", sets == 1 ? "single set:" : "10 sets:");
    for (int k = 0; k < traffic::kStandardAttackKindCount; ++k) {
      const auto& [total, hit] = detail.per_kind[static_cast<std::size_t>(k)];
      std::printf(" %s=%d/%d",
                  std::string(traffic::attack_name(static_cast<traffic::AttackKind>(k)))
                      .substr(0, 8)
                      .c_str(),
                  hit, total);
    }
    std::printf("\n");
  }

  std::printf("\n=== Figure 16: false positive rate (%% of non-attack flows) ===\n");
  std::printf("paper: single set ~1-1.25%%; 10 sets rising to ~4%%\n");
  std::printf("%-26s %8s %8s %8s\n", "", "2%", "4%", "8%");
  for (const int sets : {1, 10}) {
    std::printf("%-26s", sets == 1 ? "single attack set" : "10 attack sets");
    for (const auto& p : points) {
      if (p.sets == sets) {
        std::printf(" %7.2f%%", 100.0 * p.result.false_positive_rate);
      }
    }
    std::printf("\n");
  }

  // Section 6.4 headline: "detection rate of about 80% and a false positive
  // rate of about 2%" outside pathological cases.
  double detection = 0;
  double fp = 0;
  for (const auto& p : points) {
    detection += p.result.detection_rate;
    fp += p.result.false_positive_rate;
  }
  detection /= static_cast<double>(points.size());
  fp /= static_cast<double>(points.size());
  std::printf("\n=== Section 6.4 summary ===\n");
  std::printf("%-44s paper ~80%%   measured %.1f%%\n",
              "overall detection rate:", 100.0 * detection);
  std::printf("%-44s paper ~2%%    measured %.2f%%\n",
              "overall false positive rate:", 100.0 * fp);

  // Machine-readable perf/accuracy trajectory.
  const char* out_path = "BENCH_detection.json";
  std::string doc = "{\n  \"bench\": \"experiment_detection\",\n  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    doc += "    {\"sets\": " + std::to_string(p.sets) +
           ", \"volume\": " + obs::format_number(p.volume) +
           ", \"detection_rate\": " + obs::format_number(p.result.detection_rate) +
           ", \"flow_detection_rate\": " +
           obs::format_number(p.result.flow_detection_rate) +
           ", \"false_positive_rate\": " +
           obs::format_number(p.result.false_positive_rate) + "}";
    doc += i + 1 < points.size() ? ",\n" : "\n";
  }
  doc += "  ],\n  \"detail_runs\": [\n";
  for (std::size_t i = 0; i < detailed.size(); ++i) {
    const auto& [sets, detail] = detailed[i];
    doc += "    {\"sets\": " + std::to_string(sets) + ", \"volume\": 0.08, " +
           "\"mean_detection_latency_ms\": " +
           obs::format_number(detail.mean_detection_latency_ms) + ", " +
           metrics_json(detail.metrics) + "}";
    doc += i + 1 < detailed.size() ? ",\n" : "\n";
  }
  doc += "  ]\n}\n";
  std::ofstream out(out_path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "experiment_detection: cannot write %s\n", out_path);
    return 1;
  }
  out << doc;
  std::printf("\nwrote %s\n", out_path);
  return 0;
}

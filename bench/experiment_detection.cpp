// Reproduces Figures 15 and 16 and the Section 6.4 summary: detection rate
// and false-positive rate vs attack volume, for a single attack set
// (Section 6.3.1) and for attack sets at all ten peer ASs (the stress test
// of Section 6.3.2). Also prints the Table 1/Table 3 setup it runs on.
//
//   paper, Figure 15 (detection): single set ~83% flat across volumes;
//          10 attack sets drop to ~70%.
//   paper, Figure 16 (false positives): single set ~1-1.25%;
//          10 attack sets rise toward ~4%.

#include <cstdio>

#include "sim/testbed.h"

using namespace infilter;

int main() {
  sim::ExperimentConfig config;
  config.normal_flows_per_source = 8000;
  config.training_flows = 2200;
  config.engine.mode = core::EngineMode::kEnhanced;
  config.engine.cluster.bits_per_feature = 144;  // the paper's d = 720
  config.seed = 615;
  const int runs = 3;

  std::printf("=== Setup (Tables 1 and 3) ===\n");
  std::printf("Table 1: %d publicly-routable /8 blocks -> %d /11 sub-blocks, "
              "first %d used\n",
              net::kSlash8BlockCount, net::kTotalSubBlocks, net::kUsedSubBlocks);
  for (int s = 0; s < config.sources; ++s) {
    std::printf("  Peer AS%-2d (port %d)  EIA %s\n", s + 1, config.first_port + s,
                dagflow::eia_range(s).notation().c_str());
  }
  std::printf("\n");

  sim::ClusterCache cache(config);
  struct Point {
    double volume;
    int sets;
    sim::AveragedResult result;
  };
  std::vector<Point> points;
  for (const int sets : {1, 10}) {
    for (const double volume : {0.02, 0.04, 0.08}) {
      config.attack_volume = volume;
      config.attacked_ingresses = sets;
      points.push_back({volume, sets, sim::run_averaged(config, runs, &cache)});
    }
  }

  std::printf("=== Figure 15: attack detection rate (%% of launched attacks) ===\n");
  std::printf("paper: single set ~83%% flat; 10 sets ~70%%\n");
  std::printf("%-26s %8s %8s %8s\n", "", "2%", "4%", "8%");
  for (const int sets : {1, 10}) {
    std::printf("%-26s", sets == 1 ? "single attack set" : "10 attack sets");
    for (const auto& p : points) {
      if (p.sets == sets) std::printf(" %7.1f%%", 100.0 * p.result.detection_rate);
    }
    std::printf("\n");
  }

  std::printf("\nflow-level attack detection (share of attack flows flagged):\n");
  for (const int sets : {1, 10}) {
    std::printf("%-26s", sets == 1 ? "single attack set" : "10 attack sets");
    for (const auto& p : points) {
      if (p.sets == sets) std::printf(" %7.1f%%", 100.0 * p.result.flow_detection_rate);
    }
    std::printf("\n");
  }

  std::printf("\nper-attack instances detected (8%% volume, run seed %llu):\n",
              static_cast<unsigned long long>(config.seed));
  for (const int sets : {1, 10}) {
    config.attack_volume = 0.08;
    config.attacked_ingresses = sets;
    config.seed = 615;
    const auto detail = sim::run_experiment(config, cache.get(config.seed));
    std::printf("  mean attack-initiation-to-detection latency: %.0f ms (virtual)\n",
                detail.mean_detection_latency_ms);
    std::printf("  %-18s", sets == 1 ? "single set:" : "10 sets:");
    for (int k = 0; k < traffic::kAttackKindCount; ++k) {
      const auto& [total, hit] = detail.per_kind[static_cast<std::size_t>(k)];
      std::printf(" %s=%d/%d",
                  std::string(traffic::attack_name(static_cast<traffic::AttackKind>(k)))
                      .substr(0, 8)
                      .c_str(),
                  hit, total);
    }
    std::printf("\n");
  }

  std::printf("\n=== Figure 16: false positive rate (%% of non-attack flows) ===\n");
  std::printf("paper: single set ~1-1.25%%; 10 sets rising to ~4%%\n");
  std::printf("%-26s %8s %8s %8s\n", "", "2%", "4%", "8%");
  for (const int sets : {1, 10}) {
    std::printf("%-26s", sets == 1 ? "single attack set" : "10 attack sets");
    for (const auto& p : points) {
      if (p.sets == sets) {
        std::printf(" %7.2f%%", 100.0 * p.result.false_positive_rate);
      }
    }
    std::printf("\n");
  }

  // Section 6.4 headline: "detection rate of about 80% and a false positive
  // rate of about 2%" outside pathological cases.
  double detection = 0;
  double fp = 0;
  for (const auto& p : points) {
    detection += p.result.detection_rate;
    fp += p.result.false_positive_rate;
  }
  detection /= static_cast<double>(points.size());
  fp /= static_cast<double>(points.size());
  std::printf("\n=== Section 6.4 summary ===\n");
  std::printf("%-44s paper ~80%%   measured %.1f%%\n",
              "overall detection rate:", 100.0 * detection);
  std::printf("%-44s paper ~2%%    measured %.2f%%\n",
              "overall false positive rate:", 100.0 * fp);
  return 0;
}

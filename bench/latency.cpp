// Reproduces the Section 6.4 latency measurements with google-benchmark:
//
//   paper: "Processing latencies for the Basic InFilter were usually
//   around 0.5 msec on average. For the Enhanced InFilter, these latencies
//   varied between 2 and 6 msecs. The additional latency is attributable
//   to the NNS search overhead."
//
// Absolute numbers on modern hardware are far smaller than the 2005
// prototype's; the *shape* to reproduce is Enhanced >> Basic, with the gap
// attributable to the NNS stage (see the *_nns_search benchmarks).
//
// Besides the google-benchmark microbenchmarks, the binary replays a mixed
// expected/suspect workload through each engine mode and writes
// BENCH_latency.json: flows/sec plus p50/p95/p99 of the per-flow and
// per-stage wall-time histograms the obs layer records.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <string>

#include "core/engine.h"
#include "dagflow/dagflow.h"
#include "obs/export.h"
#include "traffic/normal.h"

using namespace infilter;

namespace {

std::vector<netflow::V5Record> make_training(std::size_t count) {
  traffic::NormalTrafficModel model;
  util::Rng rng{42};
  const auto trace = model.generate(count, 0, rng);
  dagflow::Dagflow replayer(
      dagflow::DagflowConfig{},
      dagflow::AddressPool::from_subblocks({*net::SubBlock::parse("1a")}), 1);
  std::vector<netflow::V5Record> records;
  for (const auto& labeled : replayer.replay(trace)) records.push_back(labeled.record);
  return records;
}

std::unique_ptr<core::InFilterEngine> make_engine(
    core::EngineMode mode, const std::vector<netflow::V5Record>& training) {
  core::EngineConfig config;
  config.mode = mode;
  config.seed = 7;
  // Disable EIA auto-learning: a benchmark loop replaying suspects from
  // one address range would otherwise teach the EIA set and silently
  // switch every iteration onto the fast path.
  config.eia.learn_threshold = 1 << 30;
  // unique_ptr: the engine is immovable (its registry callbacks bind to
  // its address).
  auto engine = std::make_unique<core::InFilterEngine>(config);
  for (int s = 0; s < 10; ++s) {
    for (const auto& block : dagflow::eia_range(s).expand()) {
      engine->add_expected(static_cast<core::IngressId>(9001 + s), block.prefix());
    }
  }
  if (mode == core::EngineMode::kEnhanced) engine->train(training);
  return engine;
}

netflow::V5Record expected_flow() {
  netflow::V5Record r;
  r.src_ip = *net::IPv4Address::parse("3.1.2.3");  // in AS1's EIA set
  r.dst_ip = *net::IPv4Address::parse("100.64.0.1");
  r.proto = 6;
  r.src_port = 40000;
  r.dst_port = 80;
  r.packets = 25;
  r.bytes = 20000;
  r.first = 0;
  r.last = 900;
  return r;
}

netflow::V5Record suspect_flow(std::uint32_t salt) {
  auto r = expected_flow();
  // Source from AS9's range arriving at AS1: always a suspect.
  r.src_ip = net::IPv4Address{(204u << 24) | (salt % (1u << 21))};
  r.src_port = static_cast<std::uint16_t>(1024 + salt % 60000);
  return r;
}

// The fast path every in-EIA flow takes, both configurations.
void BM_expected_flow(benchmark::State& state, core::EngineMode mode) {
  static const auto training = make_training(2000);
  auto engine = make_engine(mode, training);
  const auto flow = expected_flow();
  util::TimeMs now = 1000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine->process(flow, 9001, now++));
  }
}
BENCHMARK_CAPTURE(BM_expected_flow, basic, core::EngineMode::kBasic);
BENCHMARK_CAPTURE(BM_expected_flow, enhanced, core::EngineMode::kEnhanced);

// The paper's latency comparison: a *suspect* flow through each pipeline.
void BM_suspect_flow(benchmark::State& state, core::EngineMode mode) {
  static const auto training = make_training(2000);
  auto engine = make_engine(mode, training);
  util::TimeMs now = 1000;
  std::uint32_t salt = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine->process(suspect_flow(salt++), 9001, now++));
  }
}
BENCHMARK_CAPTURE(BM_suspect_flow, basic_eia_only, core::EngineMode::kBasic);
BENCHMARK_CAPTURE(BM_suspect_flow, enhanced_full_pipeline, core::EngineMode::kEnhanced);

// The NNS search alone, at the paper's parameters (d=720, M1=1, M2=12,
// M3=3) -- the component the paper blames for the 2-6 ms Enhanced latency.
const core::TrainedClusters& clusters_for(std::size_t training_size) {
  static std::map<std::size_t, std::unique_ptr<core::TrainedClusters>> cache;
  auto& slot = cache[training_size];
  if (!slot) {
    slot = std::make_unique<core::TrainedClusters>(make_training(training_size),
                                                   core::ClusterConfig{}, 9);
  }
  return *slot;
}

void BM_nns_search(benchmark::State& state) {
  const auto& clusters = clusters_for(static_cast<std::size_t>(state.range(0)));
  util::Rng rng{11};
  std::uint32_t salt = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(clusters.assess(suspect_flow(salt++), rng));
  }
}
BENCHMARK(BM_nns_search)->Arg(500)->Arg(2000);

// Unary encoding alone.
void BM_unary_encode(benchmark::State& state) {
  const auto encoder = core::make_flow_encoder(144);
  const auto flow = expected_flow();
  const auto stats = flowtools::FlowStats::from_record(flow).as_array();
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.encode(stats));
  }
}
BENCHMARK(BM_unary_encode);

// EIA lookup alone (the Basic InFilter inner loop).
void BM_eia_lookup(benchmark::State& state) {
  core::EiaTable table;
  for (int s = 0; s < 10; ++s) {
    for (const auto& block : dagflow::eia_range(s).expand()) {
      table.add_expected(static_cast<core::IngressId>(9001 + s), block.prefix());
    }
  }
  const auto address = *net::IPv4Address::parse("3.1.2.3");
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.is_expected(9001, address));
  }
}
BENCHMARK(BM_eia_lookup);

// -- BENCH_latency.json: histogram-backed quantile measurement --

/// One JSON block for a histogram: count plus p50/p95/p99/mean, all in
/// microseconds.
std::string quantile_json(const obs::HistogramSnapshot& h) {
  std::string out = "{\"count\": " + obs::format_number(static_cast<double>(h.count));
  out += ", \"p50_us\": " + obs::format_number(h.quantile(0.50));
  out += ", \"p95_us\": " + obs::format_number(h.quantile(0.95));
  out += ", \"p99_us\": " + obs::format_number(h.quantile(0.99));
  out += ", \"mean_us\": " + obs::format_number(h.mean());
  out += "}";
  return out;
}

/// Replays a mixed workload (3 expected : 1 suspect, the suspect sources
/// rotating so scan analysis stays busy) through a fresh engine and
/// serializes the obs histograms for that mode.
std::string measure_mode(core::EngineMode mode, const char* name,
                         const std::vector<netflow::V5Record>& training) {
  constexpr std::size_t kFlows = 40000;
  auto engine = make_engine(mode, training);
  const auto expected = expected_flow();
  util::TimeMs now = 1000;
  for (std::size_t i = 0; i < kFlows; ++i) {
    if (i % 4 == 3) {
      engine->process(suspect_flow(static_cast<std::uint32_t>(i)), 9001, now++);
    } else {
      engine->process(expected, 9001, now++);
    }
  }

  const auto snapshot = engine->registry().snapshot();
  const auto* process = snapshot.histogram("infilter_process_latency_us");
  const double busy_us = process != nullptr ? process->sum : 0.0;
  const double flows_per_sec =
      busy_us > 0.0 ? static_cast<double>(kFlows) / busy_us * 1e6 : 0.0;

  std::string out = "    {\"mode\": \"" + std::string(name) + "\"";
  out += ", \"flows\": " + obs::format_number(static_cast<double>(kFlows));
  out += ", \"flows_per_sec\": " + obs::format_number(flows_per_sec);
  if (process != nullptr) out += ",\n     \"process\": " + quantile_json(*process);
  const std::pair<const char*, const char*> stages[] = {
      {"eia", "infilter_stage_eia_latency_us"},
      {"scan", "infilter_stage_scan_latency_us"},
      {"nns", "infilter_stage_nns_latency_us"},
  };
  for (const auto& [label, metric] : stages) {
    const auto* h = snapshot.histogram(metric);
    if (h != nullptr && h->count > 0) {
      out += ",\n     \"stage_" + std::string(label) + "\": " + quantile_json(*h);
    }
  }
  out += "}";
  return out;
}

bool write_bench_json(const std::string& path) {
  static const auto training = make_training(2000);
  std::string doc = "{\n  \"bench\": \"latency\",\n  \"modes\": [\n";
  doc += measure_mode(core::EngineMode::kBasic, "basic", training);
  doc += ",\n";
  doc += measure_mode(core::EngineMode::kEnhanced, "enhanced", training);
  doc += "\n  ]\n}\n";
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << doc;
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const char* out_path = "BENCH_latency.json";
  if (!write_bench_json(out_path)) {
    std::fprintf(stderr, "latency: cannot write %s\n", out_path);
    return 1;
  }
  std::printf("wrote %s\n", out_path);
  return 0;
}

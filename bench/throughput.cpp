// Throughput of the sharded detection runtime (src/runtime) against the
// serial engine on the same Section 6 testbed workload.
//
// The paper's prototype analyzed one POP's NetFlow feed on one CPU; the
// runtime is the piece that scales the identical pipeline across cores.
// This bench replays one generated testbed stream (sim::generate_stream)
// through (a) a single InFilterEngine calling process() per flow, (b) the
// same engine calling process_batch() in 256-flow chunks, and (c) a
// ShardedRuntime at several shard counts, and writes BENCH_throughput.json:
// records/sec, speedup vs serial, and the runtime's drop/backpressure
// counters. Speedups are only
// meaningful up to `hardware_threads` (reported in the JSON) -- on a
// single-core host every shard count serializes onto one CPU and the
// sharded numbers mostly measure dispatch overhead.
//
// Usage:
//   throughput [--smoke]            # small preset, used by the ctest entry
//              [--flows 5000]       # normal flows per testbed source
//              [--threads 1,2,4]    # shard counts to sweep
//              [--producers 2]      # concurrent submitters in the
//                                   # multi-producer run (equivalence-gated
//                                   # against a serial replay in the
//                                   # realized merge order)
//              [--source-dist uniform|zipf]  # zipf skews source /24
//                                   # popularity (shard imbalance becomes
//                                   # reproducible; see src/traffic/sources.h)
//              [--zipf-s 1.26] [--churn 0]   # zipf exponent / draws per
//                                   # hot-set rotation
//              [--queue-depth 4096]
//              [--out BENCH_throughput.json]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <map>
#include <numeric>
#include <span>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "dagflow/allocation.h"
#include "obs/export.h"
#include "runtime/runtime.h"
#include "sim/testbed.h"
#include "traffic/sources.h"
#include "util/args.h"

using namespace infilter;

namespace {

struct Measurement {
  int shards = 0;       ///< 0 = serial engine
  bool batched = false; ///< serial process_batch() instead of process()
  int producers = 0;    ///< concurrent submitters (sharded runs)
  double seconds = 0;
  double records_per_sec = 0;
  std::uint64_t attacks = 0;  ///< attack verdicts, a cross-check vs serial
  std::uint64_t dropped = 0;
  std::uint64_t backpressure_waits = 0;
  std::uint64_t batches = 0;
  std::uint64_t shard_peak_min = 0;  ///< min/max over shards of peak ring
  std::uint64_t shard_peak_max = 0;  ///< occupancy during the run
};

core::EngineConfig engine_config(const sim::ExperimentConfig& config) {
  // Mirrors sim::run_experiment so verdict counts line up with the
  // testbed's: same derived seed, same shared clusters.
  core::EngineConfig engine = config.engine;
  engine.seed = config.seed ^ 0xe191eULL;
  return engine;
}

void preload_eia(const sim::ExperimentConfig& config,
                 const std::function<void(core::IngressId, const net::Prefix&)>& add) {
  for (int s = 0; s < config.sources; ++s) {
    const auto port = static_cast<core::IngressId>(config.first_port + s);
    const auto range = dagflow::eia_range(s, config.blocks_per_source);
    for (int b = range.first.index(); b <= range.last.index(); ++b) {
      add(port, net::SubBlock{b}.prefix());
    }
  }
}

Measurement run_serial(const sim::ExperimentConfig& config,
                       const sim::TestbedStream& stream,
                       std::shared_ptr<const core::TrainedClusters> clusters) {
  core::InFilterEngine engine(engine_config(config));
  preload_eia(config, [&](core::IngressId ingress, const net::Prefix& prefix) {
    engine.add_expected(ingress, prefix);
  });
  engine.set_clusters(std::move(clusters));

  Measurement m;
  const auto start = std::chrono::steady_clock::now();
  for (const auto& flow : stream.flows) {
    const auto verdict =
        engine.process(flow.record, flow.arrival_port, flow.record.last);
    m.attacks += verdict.attack ? 1 : 0;
  }
  m.seconds = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  m.records_per_sec =
      m.seconds > 0 ? static_cast<double>(stream.flows.size()) / m.seconds : 0;
  return m;
}

Measurement run_serial_batch(const sim::ExperimentConfig& config,
                             const sim::TestbedStream& stream,
                             std::shared_ptr<const core::TrainedClusters> clusters) {
  core::InFilterEngine engine(engine_config(config));
  preload_eia(config, [&](core::IngressId ingress, const net::Prefix& prefix) {
    engine.add_expected(ingress, prefix);
  });
  engine.set_clusters(std::move(clusters));

  constexpr std::size_t kBatch = 256;
  std::vector<core::FlowInput> inputs(kBatch);
  std::vector<core::Verdict> verdicts(kBatch);

  Measurement m;
  m.batched = true;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t begin = 0; begin < stream.flows.size();) {
    const std::size_t n = std::min(kBatch, stream.flows.size() - begin);
    for (std::size_t i = 0; i < n; ++i) {
      const auto& flow = stream.flows[begin + i];
      inputs[i].record = flow.record;
      inputs[i].ingress = flow.arrival_port;
      inputs[i].now = static_cast<util::TimeMs>(flow.record.last);
    }
    engine.process_batch(std::span(inputs).first(n), std::span(verdicts).first(n));
    for (std::size_t i = 0; i < n; ++i) m.attacks += verdicts[i].attack ? 1 : 0;
    begin += n;
  }
  m.seconds = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  m.records_per_sec =
      m.seconds > 0 ? static_cast<double>(stream.flows.size()) / m.seconds : 0;
  return m;
}

Measurement run_sharded(const sim::ExperimentConfig& config,
                        const sim::TestbedStream& stream, int shards,
                        std::size_t queue_depth,
                        std::shared_ptr<const core::TrainedClusters> clusters) {
  runtime::RuntimeConfig runtime_config;
  runtime_config.shards = shards;
  runtime_config.queue_depth = queue_depth;
  runtime_config.engine = engine_config(config);
  std::atomic<std::uint64_t> attacks{0};
  runtime::ShardedRuntime rt(
      runtime_config, nullptr,
      [&](const runtime::FlowItem&, const core::Verdict& verdict) {
        if (verdict.attack) attacks.fetch_add(1, std::memory_order_relaxed);
      });
  preload_eia(config, [&](core::IngressId ingress, const net::Prefix& prefix) {
    rt.add_expected(ingress, prefix);
  });
  rt.set_clusters(std::move(clusters));

  // Batched dispatch, like a collector draining a socket buffer.
  constexpr std::size_t kDispatchBatch = 512;
  std::vector<runtime::FlowItem> batch;
  batch.reserve(kDispatchBatch);

  Measurement m;
  m.shards = shards;
  const auto start = std::chrono::steady_clock::now();
  for (const auto& flow : stream.flows) {
    batch.push_back(runtime::FlowItem{flow.record, flow.arrival_port,
                                      static_cast<util::TimeMs>(flow.record.last), 0});
    if (batch.size() == kDispatchBatch) {
      rt.submit_batch(batch);
      batch.clear();
    }
  }
  if (!batch.empty()) rt.submit_batch(batch);
  rt.flush();
  m.seconds = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  m.records_per_sec =
      m.seconds > 0 ? static_cast<double>(stream.flows.size()) / m.seconds : 0;
  m.attacks = attacks.load(std::memory_order_relaxed);

  const auto stats = rt.stats();
  m.producers = static_cast<int>(rt.producer_count());
  m.dropped = stats.dropped;
  m.backpressure_waits = stats.backpressure_waits;
  m.batches = stats.batches;
  const auto peaks = rt.shard_queue_peaks();
  if (!peaks.empty()) {
    m.shard_peak_min = *std::min_element(peaks.begin(), peaks.end());
    m.shard_peak_max = *std::max_element(peaks.begin(), peaks.end());
  }
  return m;
}

/// Multi-producer run: `producers` threads submit disjoint round-robin
/// slices of the stream concurrently into the same shard rings. The
/// runtime's claim order (FlowItem::seq) defines the realized total
/// order; replaying the stream serially in exactly that order must give
/// element-wise identical attack verdicts -- the multi-producer merge
/// adds interleaving freedom but no verdict drift.
Measurement run_sharded_mp(const sim::ExperimentConfig& config,
                           const sim::TestbedStream& stream, int shards,
                           int producers, std::size_t queue_depth,
                           std::shared_ptr<const core::TrainedClusters> clusters,
                           bool* equivalent) {
  runtime::RuntimeConfig runtime_config;
  runtime_config.shards = shards;
  runtime_config.producers = producers;
  runtime_config.queue_depth = queue_depth;
  runtime_config.engine = engine_config(config);
  const std::size_t n = stream.flows.size();
  // Indexed by tag (= stream index); each tag is written by exactly one
  // verdict-hook call, so plain vectors are race-free.
  std::vector<std::uint64_t> seq_of(n, 0);
  std::vector<std::uint8_t> attack_of(n, 0);
  runtime::ShardedRuntime rt(
      runtime_config, nullptr,
      [&](const runtime::FlowItem& item, const core::Verdict& verdict) {
        seq_of[item.tag] = item.seq;
        attack_of[item.tag] = verdict.attack ? 1 : 0;
      });
  preload_eia(config, [&](core::IngressId ingress, const net::Prefix& prefix) {
    rt.add_expected(ingress, prefix);
  });
  rt.set_clusters(clusters);

  Measurement m;
  m.shards = shards;
  const auto start = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> submitters;
    submitters.reserve(static_cast<std::size_t>(producers));
    for (int p = 0; p < producers; ++p) {
      submitters.emplace_back([&, p] {
        constexpr std::size_t kDispatchBatch = 512;
        std::vector<runtime::FlowItem> batch;
        batch.reserve(kDispatchBatch);
        for (std::size_t i = static_cast<std::size_t>(p); i < n;
             i += static_cast<std::size_t>(producers)) {
          const auto& flow = stream.flows[i];
          batch.push_back(runtime::FlowItem{
              flow.record, flow.arrival_port,
              static_cast<util::TimeMs>(flow.record.last), i});
          if (batch.size() == kDispatchBatch) {
            rt.submit_batch(batch, p);
            batch.clear();
          }
        }
        if (!batch.empty()) rt.submit_batch(batch, p);
      });
    }
    for (auto& t : submitters) t.join();
  }
  rt.flush();
  m.seconds = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  m.records_per_sec = m.seconds > 0 ? static_cast<double>(n) / m.seconds : 0;
  for (const auto a : attack_of) m.attacks += a;

  const auto stats = rt.stats();
  m.producers = static_cast<int>(rt.producer_count());
  m.dropped = stats.dropped;
  m.backpressure_waits = stats.backpressure_waits;
  m.batches = stats.batches;
  const auto peaks = rt.shard_queue_peaks();
  if (!peaks.empty()) {
    m.shard_peak_min = *std::min_element(peaks.begin(), peaks.end());
    m.shard_peak_max = *std::max_element(peaks.begin(), peaks.end());
  }

  // Equivalence gate: serial replay in realized claim order.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return seq_of[a] < seq_of[b]; });
  core::InFilterEngine replay(engine_config(config));
  preload_eia(config, [&](core::IngressId ingress, const net::Prefix& prefix) {
    replay.add_expected(ingress, prefix);
  });
  replay.set_clusters(std::move(clusters));
  bool identical = true;
  for (const auto i : order) {
    const auto& flow = stream.flows[i];
    const auto verdict =
        replay.process(flow.record, flow.arrival_port, flow.record.last);
    if ((verdict.attack ? 1 : 0) != attack_of[i]) {
      identical = false;
      break;
    }
  }
  if (equivalent != nullptr) *equivalent = identical;
  return m;
}

std::string to_json(const Measurement& m, double serial_rps) {
  std::string out = "    {";
  if (m.shards > 0) {
    out += m.producers > 1 ? "\"mode\": \"sharded_multi_producer\""
                           : "\"mode\": \"sharded\"";
    out += ", \"shards\": " + std::to_string(m.shards);
    out += ", \"producers\": " + std::to_string(m.producers);
  } else {
    out += m.batched ? "\"mode\": \"serial_batch\"" : "\"mode\": \"serial\"";
  }
  out += ", \"seconds\": " + obs::format_number(m.seconds);
  out += ", \"records_per_sec\": " + obs::format_number(m.records_per_sec);
  if ((m.shards > 0 || m.batched) && serial_rps > 0) {
    out += ", \"speedup_vs_serial\": " +
           obs::format_number(m.records_per_sec / serial_rps);
  }
  if (m.shards > 0 && serial_rps > 0) {
    out += ", \"dropped\": " + obs::format_number(static_cast<double>(m.dropped));
    out += ", \"backpressure_waits\": " +
           obs::format_number(static_cast<double>(m.backpressure_waits));
    out += ", \"worker_batches\": " +
           obs::format_number(static_cast<double>(m.batches));
  }
  if (m.shards > 0) {
    out += ", \"shard_queue_peak_min\": " + std::to_string(m.shard_peak_min);
    out += ", \"shard_queue_peak_max\": " + std::to_string(m.shard_peak_max);
  }
  out += ", \"attack_verdicts\": " +
         obs::format_number(static_cast<double>(m.attacks));
  out += "}";
  return out;
}

/// Rewrites each flow's source /24 by Zipf(s)-ranked popularity over the
/// distinct /24s its ingress already uses, keeping the host byte. Sources
/// stay inside the same expected EIA blocks -- only how often each /24
/// appears changes -- so shard imbalance (shard_of keys on the source
/// /24) becomes reproducible without moving traffic between EIA sets.
void apply_source_skew(sim::TestbedStream& stream, double zipf_s,
                       std::size_t churn_every, std::uint64_t seed) {
  std::map<std::uint16_t, std::vector<std::uint32_t>> slash24s_by_port;
  {
    std::map<std::uint16_t, std::unordered_set<std::uint32_t>> seen;
    for (const auto& flow : stream.flows) {
      const auto slash24 = flow.record.src_ip.value() & 0xFFFFFF00u;
      if (seen[flow.arrival_port].insert(slash24).second) {
        slash24s_by_port[flow.arrival_port].push_back(slash24);
      }
    }
  }
  std::map<std::uint16_t, traffic::ZipfSourceModel> models;
  for (const auto& [port, list] : slash24s_by_port) {
    models.emplace(port,
                   traffic::ZipfSourceModel(
                       list.size(),
                       traffic::SourceSkewConfig{zipf_s, churn_every},
                       seed ^ port));
  }
  util::Rng rng{seed};
  for (auto& flow : stream.flows) {
    const auto& list = slash24s_by_port[flow.arrival_port];
    const auto index = models.at(flow.arrival_port).draw(rng);
    flow.record.src_ip =
        net::IPv4Address{list[index] | (flow.record.src_ip.value() & 0xFFu)};
  }
}

std::vector<int> parse_thread_counts(const std::string& spec) {
  std::vector<int> counts;
  std::size_t at = 0;
  while (at <= spec.size()) {
    const auto comma = spec.find(',', at);
    const auto token = spec.substr(
        at, comma == std::string::npos ? std::string::npos : comma - at);
    if (const int n = std::atoi(token.c_str()); n > 0) counts.push_back(n);
    if (comma == std::string::npos) break;
    at = comma + 1;
  }
  return counts;
}

}  // namespace

int main(int argc, char** argv) {
  const auto parsed = util::Args::parse(argc, argv, {"smoke"});
  if (!parsed) {
    std::fprintf(stderr, "throughput: %s\n", parsed.error().message.c_str());
    return 1;
  }
  const auto& args = *parsed;
  const bool smoke = args.has("smoke");

  sim::ExperimentConfig config;
  config.seed = 33;
  config.engine.cluster.bits_per_feature = 48;
  config.normal_flows_per_source = static_cast<std::size_t>(
      args.int_or("flows", smoke ? 400 : 5000));
  config.training_flows = smoke ? 300 : 1500;
  config.attack_volume = 0.04;
  config.attacked_ingresses = config.sources;

  const auto thread_counts =
      parse_thread_counts(args.value_or("threads", smoke ? "1,2" : "1,2,4"));
  const auto queue_depth =
      static_cast<std::size_t>(args.int_or("queue-depth", 4096));
  const int producers =
      std::max(1, static_cast<int>(args.int_or("producers", 2)));
  const auto source_dist = args.value_or("source-dist", "uniform");
  if (source_dist != "uniform" && source_dist != "zipf") {
    std::fprintf(stderr, "throughput: --source-dist must be uniform or zipf\n");
    return 1;
  }
  const double zipf_s = std::atof(args.value_or("zipf-s", "1.26").c_str());
  const auto churn = static_cast<std::size_t>(args.int_or("churn", 0));

  std::printf("generating testbed stream (%zu flows/source)...\n",
              config.normal_flows_per_source);
  auto stream = sim::generate_stream(config);
  if (source_dist == "zipf") {
    apply_source_skew(stream, zipf_s, churn, config.seed);
    std::printf("source skew: zipf(s=%.2f), churn every %zu draws\n", zipf_s,
                churn);
  }
  const auto clusters = sim::train_clusters(config);
  std::printf("replaying %zu records\n", stream.flows.size());

  const auto serial = run_serial(config, stream, clusters);
  std::printf("serial: %.0f records/sec (%llu attack verdicts)\n",
              serial.records_per_sec,
              static_cast<unsigned long long>(serial.attacks));

  const auto serial_batch = run_serial_batch(config, stream, clusters);
  std::printf("serial_batch: %.0f records/sec (%.2fx serial, %llu attack verdicts)\n",
              serial_batch.records_per_sec,
              serial.records_per_sec > 0
                  ? serial_batch.records_per_sec / serial.records_per_sec
                  : 0.0,
              static_cast<unsigned long long>(serial_batch.attacks));

  std::vector<Measurement> sharded;
  for (const int shards : thread_counts) {
    sharded.push_back(run_sharded(config, stream, shards, queue_depth, clusters));
    const auto& m = sharded.back();
    std::printf("sharded x%d: %.0f records/sec (%.2fx serial, %llu attack verdicts)\n",
                m.shards, m.records_per_sec,
                serial.records_per_sec > 0 ? m.records_per_sec / serial.records_per_sec
                                           : 0.0,
                static_cast<unsigned long long>(m.attacks));
  }

  // Multi-producer run at the widest shard count, gated on element-wise
  // equivalence with a serial replay in the realized claim order.
  const int mp_shards = thread_counts.empty() ? 2 : thread_counts.back();
  bool mp_equivalent = false;
  const auto mp = run_sharded_mp(config, stream, mp_shards, producers,
                                 queue_depth, clusters, &mp_equivalent);
  std::printf(
      "sharded x%d / %d producers: %.0f records/sec (%llu attack verdicts, "
      "shard peaks %llu..%llu, replay-equivalent: %s)\n",
      mp.shards, mp.producers, mp.records_per_sec,
      static_cast<unsigned long long>(mp.attacks),
      static_cast<unsigned long long>(mp.shard_peak_min),
      static_cast<unsigned long long>(mp.shard_peak_max),
      mp_equivalent ? "yes" : "NO");

  std::string doc = "{\n  \"bench\": \"throughput\",\n";
  doc += "  \"hardware_threads\": " +
         std::to_string(std::thread::hardware_concurrency()) + ",\n";
  doc += "  \"records\": " + std::to_string(stream.flows.size()) + ",\n";
  doc += "  \"source_dist\": \"" + source_dist + "\",\n";
  if (source_dist == "zipf") {
    doc += "  \"zipf_s\": " + obs::format_number(zipf_s) + ",\n";
    doc += "  \"churn_every\": " + std::to_string(churn) + ",\n";
  }
  doc += "  \"runs\": [\n";
  doc += to_json(serial, 0);
  doc += ",\n" + to_json(serial_batch, serial.records_per_sec);
  for (const auto& m : sharded) {
    doc += ",\n" + to_json(m, serial.records_per_sec);
  }
  doc += ",\n" + to_json(mp, serial.records_per_sec);
  doc += "\n  ]\n}\n";

  const auto out_path = args.value_or("out", "BENCH_throughput.json");
  std::ofstream out(out_path, std::ios::trunc);
  out << doc;
  if (!out) {
    std::fprintf(stderr, "throughput: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());

  // Correctness gates (perf ratios stay informational on small hosts).
  if (!mp_equivalent) {
    std::fprintf(stderr,
                 "FAIL: multi-producer verdicts diverged from the serial "
                 "replay in realized claim order\n");
    return 1;
  }
  if (mp.dropped != 0) {
    std::fprintf(stderr, "FAIL: multi-producer run dropped %llu flows under kBlock\n",
                 static_cast<unsigned long long>(mp.dropped));
    return 1;
  }
  return 0;
}

# Empty dependencies file for ddos_tfn2k.
# This may be replaced when dependencies are built.

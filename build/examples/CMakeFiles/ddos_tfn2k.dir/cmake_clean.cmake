file(REMOVE_RECURSE
  "CMakeFiles/ddos_tfn2k.dir/ddos_tfn2k.cpp.o"
  "CMakeFiles/ddos_tfn2k.dir/ddos_tfn2k.cpp.o.d"
  "ddos_tfn2k"
  "ddos_tfn2k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddos_tfn2k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/route_instability.dir/route_instability.cpp.o"
  "CMakeFiles/route_instability.dir/route_instability.cpp.o.d"
  "route_instability"
  "route_instability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/route_instability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for route_instability.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for slammer_worm.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/slammer_worm.dir/slammer_worm.cpp.o"
  "CMakeFiles/slammer_worm.dir/slammer_worm.cpp.o.d"
  "slammer_worm"
  "slammer_worm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slammer_worm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for netflow_collector.
# This may be replaced when dependencies are built.

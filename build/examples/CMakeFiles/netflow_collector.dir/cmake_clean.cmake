file(REMOVE_RECURSE
  "CMakeFiles/netflow_collector.dir/netflow_collector.cpp.o"
  "CMakeFiles/netflow_collector.dir/netflow_collector.cpp.o.d"
  "netflow_collector"
  "netflow_collector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netflow_collector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

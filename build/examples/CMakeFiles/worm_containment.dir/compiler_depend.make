# Empty compiler generated dependencies file for worm_containment.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/worm_containment.dir/worm_containment.cpp.o"
  "CMakeFiles/worm_containment.dir/worm_containment.cpp.o.d"
  "worm_containment"
  "worm_containment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/worm_containment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for traceback_ddos.
# This may be replaced when dependencies are built.

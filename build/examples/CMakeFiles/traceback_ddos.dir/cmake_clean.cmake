file(REMOVE_RECURSE
  "CMakeFiles/traceback_ddos.dir/traceback_ddos.cpp.o"
  "CMakeFiles/traceback_ddos.dir/traceback_ddos.cpp.o.d"
  "traceback_ddos"
  "traceback_ddos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traceback_ddos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

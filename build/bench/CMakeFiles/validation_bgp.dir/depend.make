# Empty dependencies file for validation_bgp.
# This may be replaced when dependencies are built.

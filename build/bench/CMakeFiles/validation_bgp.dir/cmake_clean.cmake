file(REMOVE_RECURSE
  "CMakeFiles/validation_bgp.dir/validation_bgp.cpp.o"
  "CMakeFiles/validation_bgp.dir/validation_bgp.cpp.o.d"
  "validation_bgp"
  "validation_bgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validation_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for latency.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/latency.dir/latency.cpp.o"
  "CMakeFiles/latency.dir/latency.cpp.o.d"
  "latency"
  "latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for figure1_stability.
# This may be replaced when dependencies are built.

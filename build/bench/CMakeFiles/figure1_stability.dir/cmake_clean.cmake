file(REMOVE_RECURSE
  "CMakeFiles/figure1_stability.dir/figure1_stability.cpp.o"
  "CMakeFiles/figure1_stability.dir/figure1_stability.cpp.o.d"
  "figure1_stability"
  "figure1_stability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure1_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

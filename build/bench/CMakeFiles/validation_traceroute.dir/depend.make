# Empty dependencies file for validation_traceroute.
# This may be replaced when dependencies are built.

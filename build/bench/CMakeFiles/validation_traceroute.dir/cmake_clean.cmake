file(REMOVE_RECURSE
  "CMakeFiles/validation_traceroute.dir/validation_traceroute.cpp.o"
  "CMakeFiles/validation_traceroute.dir/validation_traceroute.cpp.o.d"
  "validation_traceroute"
  "validation_traceroute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validation_traceroute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

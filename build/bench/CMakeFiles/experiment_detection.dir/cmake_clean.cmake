file(REMOVE_RECURSE
  "CMakeFiles/experiment_detection.dir/experiment_detection.cpp.o"
  "CMakeFiles/experiment_detection.dir/experiment_detection.cpp.o.d"
  "experiment_detection"
  "experiment_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/experiment_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

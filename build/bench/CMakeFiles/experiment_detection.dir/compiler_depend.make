# Empty compiler generated dependencies file for experiment_detection.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/experiment_route_change.cpp" "bench/CMakeFiles/experiment_route_change.dir/experiment_route_change.cpp.o" "gcc" "bench/CMakeFiles/experiment_route_change.dir/experiment_route_change.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/infilter_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/infilter_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/infilter_core.dir/DependInfo.cmake"
  "/root/repo/build/src/flowtools/CMakeFiles/infilter_flowtools.dir/DependInfo.cmake"
  "/root/repo/build/src/nns/CMakeFiles/infilter_nns.dir/DependInfo.cmake"
  "/root/repo/build/src/alert/CMakeFiles/infilter_alert.dir/DependInfo.cmake"
  "/root/repo/build/src/dagflow/CMakeFiles/infilter_dagflow.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/infilter_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/netflow/CMakeFiles/infilter_netflow.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/infilter_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

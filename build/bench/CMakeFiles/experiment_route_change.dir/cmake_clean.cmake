file(REMOVE_RECURSE
  "CMakeFiles/experiment_route_change.dir/experiment_route_change.cpp.o"
  "CMakeFiles/experiment_route_change.dir/experiment_route_change.cpp.o.d"
  "experiment_route_change"
  "experiment_route_change.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/experiment_route_change.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for experiment_route_change.
# This may be replaced when dependencies are built.

# Empty dependencies file for nns_ablation.
# This may be replaced when dependencies are built.

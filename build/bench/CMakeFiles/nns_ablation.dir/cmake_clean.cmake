file(REMOVE_RECURSE
  "CMakeFiles/nns_ablation.dir/nns_ablation.cpp.o"
  "CMakeFiles/nns_ablation.dir/nns_ablation.cpp.o.d"
  "nns_ablation"
  "nns_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nns_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

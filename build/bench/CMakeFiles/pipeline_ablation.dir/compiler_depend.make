# Empty compiler generated dependencies file for pipeline_ablation.
# This may be replaced when dependencies are built.

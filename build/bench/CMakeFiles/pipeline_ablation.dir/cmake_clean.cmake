file(REMOVE_RECURSE
  "CMakeFiles/pipeline_ablation.dir/pipeline_ablation.cpp.o"
  "CMakeFiles/pipeline_ablation.dir/pipeline_ablation.cpp.o.d"
  "pipeline_ablation"
  "pipeline_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

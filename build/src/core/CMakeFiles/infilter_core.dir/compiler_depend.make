# Empty compiler generated dependencies file for infilter_core.
# This may be replaced when dependencies are built.

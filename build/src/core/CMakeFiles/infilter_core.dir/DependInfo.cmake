
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cluster.cpp" "src/core/CMakeFiles/infilter_core.dir/cluster.cpp.o" "gcc" "src/core/CMakeFiles/infilter_core.dir/cluster.cpp.o.d"
  "/root/repo/src/core/eia.cpp" "src/core/CMakeFiles/infilter_core.dir/eia.cpp.o" "gcc" "src/core/CMakeFiles/infilter_core.dir/eia.cpp.o.d"
  "/root/repo/src/core/eia_io.cpp" "src/core/CMakeFiles/infilter_core.dir/eia_io.cpp.o" "gcc" "src/core/CMakeFiles/infilter_core.dir/eia_io.cpp.o.d"
  "/root/repo/src/core/engine.cpp" "src/core/CMakeFiles/infilter_core.dir/engine.cpp.o" "gcc" "src/core/CMakeFiles/infilter_core.dir/engine.cpp.o.d"
  "/root/repo/src/core/scan.cpp" "src/core/CMakeFiles/infilter_core.dir/scan.cpp.o" "gcc" "src/core/CMakeFiles/infilter_core.dir/scan.cpp.o.d"
  "/root/repo/src/core/traceback.cpp" "src/core/CMakeFiles/infilter_core.dir/traceback.cpp.o" "gcc" "src/core/CMakeFiles/infilter_core.dir/traceback.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/infilter_net.dir/DependInfo.cmake"
  "/root/repo/build/src/netflow/CMakeFiles/infilter_netflow.dir/DependInfo.cmake"
  "/root/repo/build/src/flowtools/CMakeFiles/infilter_flowtools.dir/DependInfo.cmake"
  "/root/repo/build/src/nns/CMakeFiles/infilter_nns.dir/DependInfo.cmake"
  "/root/repo/build/src/alert/CMakeFiles/infilter_alert.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

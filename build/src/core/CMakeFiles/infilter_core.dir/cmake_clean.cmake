file(REMOVE_RECURSE
  "CMakeFiles/infilter_core.dir/cluster.cpp.o"
  "CMakeFiles/infilter_core.dir/cluster.cpp.o.d"
  "CMakeFiles/infilter_core.dir/eia.cpp.o"
  "CMakeFiles/infilter_core.dir/eia.cpp.o.d"
  "CMakeFiles/infilter_core.dir/eia_io.cpp.o"
  "CMakeFiles/infilter_core.dir/eia_io.cpp.o.d"
  "CMakeFiles/infilter_core.dir/engine.cpp.o"
  "CMakeFiles/infilter_core.dir/engine.cpp.o.d"
  "CMakeFiles/infilter_core.dir/scan.cpp.o"
  "CMakeFiles/infilter_core.dir/scan.cpp.o.d"
  "CMakeFiles/infilter_core.dir/traceback.cpp.o"
  "CMakeFiles/infilter_core.dir/traceback.cpp.o.d"
  "libinfilter_core.a"
  "libinfilter_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infilter_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

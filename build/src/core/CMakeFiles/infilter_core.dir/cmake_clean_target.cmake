file(REMOVE_RECURSE
  "libinfilter_core.a"
)

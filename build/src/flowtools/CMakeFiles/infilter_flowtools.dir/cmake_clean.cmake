file(REMOVE_RECURSE
  "CMakeFiles/infilter_flowtools.dir/ascii.cpp.o"
  "CMakeFiles/infilter_flowtools.dir/ascii.cpp.o.d"
  "CMakeFiles/infilter_flowtools.dir/capture.cpp.o"
  "CMakeFiles/infilter_flowtools.dir/capture.cpp.o.d"
  "CMakeFiles/infilter_flowtools.dir/report.cpp.o"
  "CMakeFiles/infilter_flowtools.dir/report.cpp.o.d"
  "CMakeFiles/infilter_flowtools.dir/udp.cpp.o"
  "CMakeFiles/infilter_flowtools.dir/udp.cpp.o.d"
  "libinfilter_flowtools.a"
  "libinfilter_flowtools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infilter_flowtools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

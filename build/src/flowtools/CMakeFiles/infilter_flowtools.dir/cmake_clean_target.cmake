file(REMOVE_RECURSE
  "libinfilter_flowtools.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flowtools/ascii.cpp" "src/flowtools/CMakeFiles/infilter_flowtools.dir/ascii.cpp.o" "gcc" "src/flowtools/CMakeFiles/infilter_flowtools.dir/ascii.cpp.o.d"
  "/root/repo/src/flowtools/capture.cpp" "src/flowtools/CMakeFiles/infilter_flowtools.dir/capture.cpp.o" "gcc" "src/flowtools/CMakeFiles/infilter_flowtools.dir/capture.cpp.o.d"
  "/root/repo/src/flowtools/report.cpp" "src/flowtools/CMakeFiles/infilter_flowtools.dir/report.cpp.o" "gcc" "src/flowtools/CMakeFiles/infilter_flowtools.dir/report.cpp.o.d"
  "/root/repo/src/flowtools/udp.cpp" "src/flowtools/CMakeFiles/infilter_flowtools.dir/udp.cpp.o" "gcc" "src/flowtools/CMakeFiles/infilter_flowtools.dir/udp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netflow/CMakeFiles/infilter_netflow.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/infilter_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for infilter_flowtools.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/infilter_alert.dir/idmef.cpp.o"
  "CMakeFiles/infilter_alert.dir/idmef.cpp.o.d"
  "CMakeFiles/infilter_alert.dir/idmef_io.cpp.o"
  "CMakeFiles/infilter_alert.dir/idmef_io.cpp.o.d"
  "libinfilter_alert.a"
  "libinfilter_alert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infilter_alert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

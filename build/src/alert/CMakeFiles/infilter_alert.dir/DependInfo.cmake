
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/alert/idmef.cpp" "src/alert/CMakeFiles/infilter_alert.dir/idmef.cpp.o" "gcc" "src/alert/CMakeFiles/infilter_alert.dir/idmef.cpp.o.d"
  "/root/repo/src/alert/idmef_io.cpp" "src/alert/CMakeFiles/infilter_alert.dir/idmef_io.cpp.o" "gcc" "src/alert/CMakeFiles/infilter_alert.dir/idmef_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/infilter_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

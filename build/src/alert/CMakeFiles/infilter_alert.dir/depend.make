# Empty dependencies file for infilter_alert.
# This may be replaced when dependencies are built.

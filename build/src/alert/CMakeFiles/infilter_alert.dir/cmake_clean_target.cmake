file(REMOVE_RECURSE
  "libinfilter_alert.a"
)

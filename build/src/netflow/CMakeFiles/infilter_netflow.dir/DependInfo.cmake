
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netflow/flow_cache.cpp" "src/netflow/CMakeFiles/infilter_netflow.dir/flow_cache.cpp.o" "gcc" "src/netflow/CMakeFiles/infilter_netflow.dir/flow_cache.cpp.o.d"
  "/root/repo/src/netflow/v5.cpp" "src/netflow/CMakeFiles/infilter_netflow.dir/v5.cpp.o" "gcc" "src/netflow/CMakeFiles/infilter_netflow.dir/v5.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/infilter_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/infilter_netflow.dir/flow_cache.cpp.o"
  "CMakeFiles/infilter_netflow.dir/flow_cache.cpp.o.d"
  "CMakeFiles/infilter_netflow.dir/v5.cpp.o"
  "CMakeFiles/infilter_netflow.dir/v5.cpp.o.d"
  "libinfilter_netflow.a"
  "libinfilter_netflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infilter_netflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

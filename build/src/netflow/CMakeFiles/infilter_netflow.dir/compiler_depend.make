# Empty compiler generated dependencies file for infilter_netflow.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libinfilter_netflow.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/infilter_util.dir/args.cpp.o"
  "CMakeFiles/infilter_util.dir/args.cpp.o.d"
  "libinfilter_util.a"
  "libinfilter_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infilter_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

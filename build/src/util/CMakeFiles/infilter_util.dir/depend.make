# Empty dependencies file for infilter_util.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libinfilter_util.a"
)

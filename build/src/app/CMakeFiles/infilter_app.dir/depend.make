# Empty dependencies file for infilter_app.
# This may be replaced when dependencies are built.

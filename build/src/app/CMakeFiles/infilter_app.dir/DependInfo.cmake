
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/app/node.cpp" "src/app/CMakeFiles/infilter_app.dir/node.cpp.o" "gcc" "src/app/CMakeFiles/infilter_app.dir/node.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/infilter_core.dir/DependInfo.cmake"
  "/root/repo/build/src/flowtools/CMakeFiles/infilter_flowtools.dir/DependInfo.cmake"
  "/root/repo/build/src/netflow/CMakeFiles/infilter_netflow.dir/DependInfo.cmake"
  "/root/repo/build/src/nns/CMakeFiles/infilter_nns.dir/DependInfo.cmake"
  "/root/repo/build/src/alert/CMakeFiles/infilter_alert.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/infilter_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libinfilter_app.a"
)

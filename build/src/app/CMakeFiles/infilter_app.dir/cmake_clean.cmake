file(REMOVE_RECURSE
  "CMakeFiles/infilter_app.dir/node.cpp.o"
  "CMakeFiles/infilter_app.dir/node.cpp.o.d"
  "libinfilter_app.a"
  "libinfilter_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infilter_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/infilter_nns.dir/encoding.cpp.o"
  "CMakeFiles/infilter_nns.dir/encoding.cpp.o.d"
  "CMakeFiles/infilter_nns.dir/kor.cpp.o"
  "CMakeFiles/infilter_nns.dir/kor.cpp.o.d"
  "libinfilter_nns.a"
  "libinfilter_nns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infilter_nns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libinfilter_nns.a"
)

# Empty dependencies file for infilter_nns.
# This may be replaced when dependencies are built.

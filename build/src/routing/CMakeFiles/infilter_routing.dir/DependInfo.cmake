
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/bgp.cpp" "src/routing/CMakeFiles/infilter_routing.dir/bgp.cpp.o" "gcc" "src/routing/CMakeFiles/infilter_routing.dir/bgp.cpp.o.d"
  "/root/repo/src/routing/igp.cpp" "src/routing/CMakeFiles/infilter_routing.dir/igp.cpp.o" "gcc" "src/routing/CMakeFiles/infilter_routing.dir/igp.cpp.o.d"
  "/root/repo/src/routing/internet.cpp" "src/routing/CMakeFiles/infilter_routing.dir/internet.cpp.o" "gcc" "src/routing/CMakeFiles/infilter_routing.dir/internet.cpp.o.d"
  "/root/repo/src/routing/routeviews.cpp" "src/routing/CMakeFiles/infilter_routing.dir/routeviews.cpp.o" "gcc" "src/routing/CMakeFiles/infilter_routing.dir/routeviews.cpp.o.d"
  "/root/repo/src/routing/studies.cpp" "src/routing/CMakeFiles/infilter_routing.dir/studies.cpp.o" "gcc" "src/routing/CMakeFiles/infilter_routing.dir/studies.cpp.o.d"
  "/root/repo/src/routing/topology.cpp" "src/routing/CMakeFiles/infilter_routing.dir/topology.cpp.o" "gcc" "src/routing/CMakeFiles/infilter_routing.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/infilter_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

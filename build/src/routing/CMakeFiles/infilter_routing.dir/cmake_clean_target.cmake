file(REMOVE_RECURSE
  "libinfilter_routing.a"
)

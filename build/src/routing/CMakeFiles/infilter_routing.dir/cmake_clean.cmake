file(REMOVE_RECURSE
  "CMakeFiles/infilter_routing.dir/bgp.cpp.o"
  "CMakeFiles/infilter_routing.dir/bgp.cpp.o.d"
  "CMakeFiles/infilter_routing.dir/igp.cpp.o"
  "CMakeFiles/infilter_routing.dir/igp.cpp.o.d"
  "CMakeFiles/infilter_routing.dir/internet.cpp.o"
  "CMakeFiles/infilter_routing.dir/internet.cpp.o.d"
  "CMakeFiles/infilter_routing.dir/routeviews.cpp.o"
  "CMakeFiles/infilter_routing.dir/routeviews.cpp.o.d"
  "CMakeFiles/infilter_routing.dir/studies.cpp.o"
  "CMakeFiles/infilter_routing.dir/studies.cpp.o.d"
  "CMakeFiles/infilter_routing.dir/topology.cpp.o"
  "CMakeFiles/infilter_routing.dir/topology.cpp.o.d"
  "libinfilter_routing.a"
  "libinfilter_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infilter_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

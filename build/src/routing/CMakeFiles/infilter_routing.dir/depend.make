# Empty dependencies file for infilter_routing.
# This may be replaced when dependencies are built.

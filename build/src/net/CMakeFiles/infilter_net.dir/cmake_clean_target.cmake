file(REMOVE_RECURSE
  "libinfilter_net.a"
)

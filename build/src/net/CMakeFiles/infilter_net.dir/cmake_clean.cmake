file(REMOVE_RECURSE
  "CMakeFiles/infilter_net.dir/ipv4.cpp.o"
  "CMakeFiles/infilter_net.dir/ipv4.cpp.o.d"
  "CMakeFiles/infilter_net.dir/subblocks.cpp.o"
  "CMakeFiles/infilter_net.dir/subblocks.cpp.o.d"
  "libinfilter_net.a"
  "libinfilter_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infilter_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/ipv4.cpp" "src/net/CMakeFiles/infilter_net.dir/ipv4.cpp.o" "gcc" "src/net/CMakeFiles/infilter_net.dir/ipv4.cpp.o.d"
  "/root/repo/src/net/subblocks.cpp" "src/net/CMakeFiles/infilter_net.dir/subblocks.cpp.o" "gcc" "src/net/CMakeFiles/infilter_net.dir/subblocks.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for infilter_net.
# This may be replaced when dependencies are built.

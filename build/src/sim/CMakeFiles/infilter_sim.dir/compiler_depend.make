# Empty compiler generated dependencies file for infilter_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/infilter_sim.dir/testbed.cpp.o"
  "CMakeFiles/infilter_sim.dir/testbed.cpp.o.d"
  "libinfilter_sim.a"
  "libinfilter_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infilter_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libinfilter_sim.a"
)

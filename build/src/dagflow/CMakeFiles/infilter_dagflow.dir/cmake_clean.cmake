file(REMOVE_RECURSE
  "CMakeFiles/infilter_dagflow.dir/allocation.cpp.o"
  "CMakeFiles/infilter_dagflow.dir/allocation.cpp.o.d"
  "CMakeFiles/infilter_dagflow.dir/dagflow.cpp.o"
  "CMakeFiles/infilter_dagflow.dir/dagflow.cpp.o.d"
  "libinfilter_dagflow.a"
  "libinfilter_dagflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infilter_dagflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

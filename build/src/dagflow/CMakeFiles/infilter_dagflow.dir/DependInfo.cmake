
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dagflow/allocation.cpp" "src/dagflow/CMakeFiles/infilter_dagflow.dir/allocation.cpp.o" "gcc" "src/dagflow/CMakeFiles/infilter_dagflow.dir/allocation.cpp.o.d"
  "/root/repo/src/dagflow/dagflow.cpp" "src/dagflow/CMakeFiles/infilter_dagflow.dir/dagflow.cpp.o" "gcc" "src/dagflow/CMakeFiles/infilter_dagflow.dir/dagflow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/infilter_net.dir/DependInfo.cmake"
  "/root/repo/build/src/netflow/CMakeFiles/infilter_netflow.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/infilter_traffic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for infilter_dagflow.
# This may be replaced when dependencies are built.

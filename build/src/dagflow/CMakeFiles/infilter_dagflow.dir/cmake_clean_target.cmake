file(REMOVE_RECURSE
  "libinfilter_dagflow.a"
)

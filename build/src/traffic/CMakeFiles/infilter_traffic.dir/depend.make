# Empty dependencies file for infilter_traffic.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libinfilter_traffic.a"
)

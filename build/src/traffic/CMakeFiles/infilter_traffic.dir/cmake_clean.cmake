file(REMOVE_RECURSE
  "CMakeFiles/infilter_traffic.dir/attacks.cpp.o"
  "CMakeFiles/infilter_traffic.dir/attacks.cpp.o.d"
  "CMakeFiles/infilter_traffic.dir/normal.cpp.o"
  "CMakeFiles/infilter_traffic.dir/normal.cpp.o.d"
  "CMakeFiles/infilter_traffic.dir/trace.cpp.o"
  "CMakeFiles/infilter_traffic.dir/trace.cpp.o.d"
  "CMakeFiles/infilter_traffic.dir/worm.cpp.o"
  "CMakeFiles/infilter_traffic.dir/worm.cpp.o.d"
  "libinfilter_traffic.a"
  "libinfilter_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infilter_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

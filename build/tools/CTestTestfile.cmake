# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tools_flowgen_train "/root/repo/build/tools/infilter-flowgen" "--out" "/root/repo/build/tools/train.bin" "--flows" "1500" "--seed" "5")
set_tests_properties(tools_flowgen_train PROPERTIES  FIXTURES_SETUP "tool_captures" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tools_flowgen_mixed "/root/repo/build/tools/infilter-flowgen" "--out" "/root/repo/build/tools/mixed.bin" "--flows" "3000" "--seed" "9" "--attacks" "slammer,nessus-http" "--attack-volume" "0.05")
set_tests_properties(tools_flowgen_mixed PROPERTIES  FIXTURES_SETUP "tool_captures" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tools_flowgen_ascii "/root/repo/build/tools/infilter-flowgen" "--out" "/root/repo/build/tools/mixed.txt" "--flows" "500" "--seed" "9" "--attacks" "teardrop" "--ascii")
set_tests_properties(tools_flowgen_ascii PROPERTIES  FIXTURES_SETUP "tool_captures" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tools_report "/root/repo/build/tools/infilter-report" "/root/repo/build/tools/mixed.bin" "--top" "5")
set_tests_properties(tools_report PROPERTIES  FIXTURES_REQUIRED "tool_captures" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;26;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tools_report_filtered "/root/repo/build/tools/infilter-report" "/root/repo/build/tools/mixed.bin" "--group" "dstip+dstport" "--dstport" "1434")
set_tests_properties(tools_report_filtered PROPERTIES  FIXTURES_REQUIRED "tool_captures" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;27;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tools_report_ascii "/root/repo/build/tools/infilter-report" "/root/repo/build/tools/mixed.txt" "--ascii")
set_tests_properties(tools_report_ascii PROPERTIES  FIXTURES_REQUIRED "tool_captures" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;29;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tools_detect "/root/repo/build/tools/infilter-detect" "/root/repo/build/tools/mixed.bin" "--train" "/root/repo/build/tools/train.bin" "--bits" "48")
set_tests_properties(tools_detect PROPERTIES  FIXTURES_REQUIRED "tool_captures" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;31;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tools_detect_basic "/root/repo/build/tools/infilter-detect" "/root/repo/build/tools/mixed.bin" "--mode" "basic")
set_tests_properties(tools_detect_basic PROPERTIES  FIXTURES_REQUIRED "tool_captures" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;34;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tools_detect_rejects_missing_train "/root/repo/build/tools/infilter-detect" "/root/repo/build/tools/mixed.bin")
set_tests_properties(tools_detect_rejects_missing_train PROPERTIES  FIXTURES_REQUIRED "tool_captures" WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;40;add_test;/root/repo/tools/CMakeLists.txt;0;")

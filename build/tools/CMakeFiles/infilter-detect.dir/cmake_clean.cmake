file(REMOVE_RECURSE
  "CMakeFiles/infilter-detect.dir/infilter_detect.cpp.o"
  "CMakeFiles/infilter-detect.dir/infilter_detect.cpp.o.d"
  "infilter-detect"
  "infilter-detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infilter-detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for infilter-detect.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for infilter-capture.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/infilter-capture.dir/infilter_capture.cpp.o"
  "CMakeFiles/infilter-capture.dir/infilter_capture.cpp.o.d"
  "infilter-capture"
  "infilter-capture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infilter-capture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

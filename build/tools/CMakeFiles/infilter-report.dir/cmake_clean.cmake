file(REMOVE_RECURSE
  "CMakeFiles/infilter-report.dir/infilter_report.cpp.o"
  "CMakeFiles/infilter-report.dir/infilter_report.cpp.o.d"
  "infilter-report"
  "infilter-report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infilter-report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for infilter-report.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/infilter-monitor.dir/infilter_monitor.cpp.o"
  "CMakeFiles/infilter-monitor.dir/infilter_monitor.cpp.o.d"
  "infilter-monitor"
  "infilter-monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infilter-monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

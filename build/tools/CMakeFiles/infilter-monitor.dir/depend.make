# Empty dependencies file for infilter-monitor.
# This may be replaced when dependencies are built.

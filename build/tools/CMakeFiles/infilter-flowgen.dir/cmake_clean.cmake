file(REMOVE_RECURSE
  "CMakeFiles/infilter-flowgen.dir/infilter_flowgen.cpp.o"
  "CMakeFiles/infilter-flowgen.dir/infilter_flowgen.cpp.o.d"
  "infilter-flowgen"
  "infilter-flowgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infilter-flowgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for infilter-flowgen.
# This may be replaced when dependencies are built.

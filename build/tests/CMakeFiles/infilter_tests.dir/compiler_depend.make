# Empty compiler generated dependencies file for infilter_tests.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_allocation.cpp" "tests/CMakeFiles/infilter_tests.dir/test_allocation.cpp.o" "gcc" "tests/CMakeFiles/infilter_tests.dir/test_allocation.cpp.o.d"
  "/root/repo/tests/test_ascii.cpp" "tests/CMakeFiles/infilter_tests.dir/test_ascii.cpp.o" "gcc" "tests/CMakeFiles/infilter_tests.dir/test_ascii.cpp.o.d"
  "/root/repo/tests/test_bgp.cpp" "tests/CMakeFiles/infilter_tests.dir/test_bgp.cpp.o" "gcc" "tests/CMakeFiles/infilter_tests.dir/test_bgp.cpp.o.d"
  "/root/repo/tests/test_bitvector.cpp" "tests/CMakeFiles/infilter_tests.dir/test_bitvector.cpp.o" "gcc" "tests/CMakeFiles/infilter_tests.dir/test_bitvector.cpp.o.d"
  "/root/repo/tests/test_capture.cpp" "tests/CMakeFiles/infilter_tests.dir/test_capture.cpp.o" "gcc" "tests/CMakeFiles/infilter_tests.dir/test_capture.cpp.o.d"
  "/root/repo/tests/test_cluster.cpp" "tests/CMakeFiles/infilter_tests.dir/test_cluster.cpp.o" "gcc" "tests/CMakeFiles/infilter_tests.dir/test_cluster.cpp.o.d"
  "/root/repo/tests/test_dagflow.cpp" "tests/CMakeFiles/infilter_tests.dir/test_dagflow.cpp.o" "gcc" "tests/CMakeFiles/infilter_tests.dir/test_dagflow.cpp.o.d"
  "/root/repo/tests/test_eia.cpp" "tests/CMakeFiles/infilter_tests.dir/test_eia.cpp.o" "gcc" "tests/CMakeFiles/infilter_tests.dir/test_eia.cpp.o.d"
  "/root/repo/tests/test_eia_io.cpp" "tests/CMakeFiles/infilter_tests.dir/test_eia_io.cpp.o" "gcc" "tests/CMakeFiles/infilter_tests.dir/test_eia_io.cpp.o.d"
  "/root/repo/tests/test_encoding.cpp" "tests/CMakeFiles/infilter_tests.dir/test_encoding.cpp.o" "gcc" "tests/CMakeFiles/infilter_tests.dir/test_encoding.cpp.o.d"
  "/root/repo/tests/test_engine.cpp" "tests/CMakeFiles/infilter_tests.dir/test_engine.cpp.o" "gcc" "tests/CMakeFiles/infilter_tests.dir/test_engine.cpp.o.d"
  "/root/repo/tests/test_flow_cache.cpp" "tests/CMakeFiles/infilter_tests.dir/test_flow_cache.cpp.o" "gcc" "tests/CMakeFiles/infilter_tests.dir/test_flow_cache.cpp.o.d"
  "/root/repo/tests/test_idmef.cpp" "tests/CMakeFiles/infilter_tests.dir/test_idmef.cpp.o" "gcc" "tests/CMakeFiles/infilter_tests.dir/test_idmef.cpp.o.d"
  "/root/repo/tests/test_idmef_io.cpp" "tests/CMakeFiles/infilter_tests.dir/test_idmef_io.cpp.o" "gcc" "tests/CMakeFiles/infilter_tests.dir/test_idmef_io.cpp.o.d"
  "/root/repo/tests/test_igp.cpp" "tests/CMakeFiles/infilter_tests.dir/test_igp.cpp.o" "gcc" "tests/CMakeFiles/infilter_tests.dir/test_igp.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/infilter_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/infilter_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_internet.cpp" "tests/CMakeFiles/infilter_tests.dir/test_internet.cpp.o" "gcc" "tests/CMakeFiles/infilter_tests.dir/test_internet.cpp.o.d"
  "/root/repo/tests/test_ipv4.cpp" "tests/CMakeFiles/infilter_tests.dir/test_ipv4.cpp.o" "gcc" "tests/CMakeFiles/infilter_tests.dir/test_ipv4.cpp.o.d"
  "/root/repo/tests/test_kor.cpp" "tests/CMakeFiles/infilter_tests.dir/test_kor.cpp.o" "gcc" "tests/CMakeFiles/infilter_tests.dir/test_kor.cpp.o.d"
  "/root/repo/tests/test_netflow_v5.cpp" "tests/CMakeFiles/infilter_tests.dir/test_netflow_v5.cpp.o" "gcc" "tests/CMakeFiles/infilter_tests.dir/test_netflow_v5.cpp.o.d"
  "/root/repo/tests/test_node.cpp" "tests/CMakeFiles/infilter_tests.dir/test_node.cpp.o" "gcc" "tests/CMakeFiles/infilter_tests.dir/test_node.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/infilter_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/infilter_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_report.cpp" "tests/CMakeFiles/infilter_tests.dir/test_report.cpp.o" "gcc" "tests/CMakeFiles/infilter_tests.dir/test_report.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/infilter_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/infilter_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_routeviews.cpp" "tests/CMakeFiles/infilter_tests.dir/test_routeviews.cpp.o" "gcc" "tests/CMakeFiles/infilter_tests.dir/test_routeviews.cpp.o.d"
  "/root/repo/tests/test_scan.cpp" "tests/CMakeFiles/infilter_tests.dir/test_scan.cpp.o" "gcc" "tests/CMakeFiles/infilter_tests.dir/test_scan.cpp.o.d"
  "/root/repo/tests/test_studies.cpp" "tests/CMakeFiles/infilter_tests.dir/test_studies.cpp.o" "gcc" "tests/CMakeFiles/infilter_tests.dir/test_studies.cpp.o.d"
  "/root/repo/tests/test_subblocks.cpp" "tests/CMakeFiles/infilter_tests.dir/test_subblocks.cpp.o" "gcc" "tests/CMakeFiles/infilter_tests.dir/test_subblocks.cpp.o.d"
  "/root/repo/tests/test_sweeps.cpp" "tests/CMakeFiles/infilter_tests.dir/test_sweeps.cpp.o" "gcc" "tests/CMakeFiles/infilter_tests.dir/test_sweeps.cpp.o.d"
  "/root/repo/tests/test_testbed.cpp" "tests/CMakeFiles/infilter_tests.dir/test_testbed.cpp.o" "gcc" "tests/CMakeFiles/infilter_tests.dir/test_testbed.cpp.o.d"
  "/root/repo/tests/test_topology.cpp" "tests/CMakeFiles/infilter_tests.dir/test_topology.cpp.o" "gcc" "tests/CMakeFiles/infilter_tests.dir/test_topology.cpp.o.d"
  "/root/repo/tests/test_traceback.cpp" "tests/CMakeFiles/infilter_tests.dir/test_traceback.cpp.o" "gcc" "tests/CMakeFiles/infilter_tests.dir/test_traceback.cpp.o.d"
  "/root/repo/tests/test_traffic.cpp" "tests/CMakeFiles/infilter_tests.dir/test_traffic.cpp.o" "gcc" "tests/CMakeFiles/infilter_tests.dir/test_traffic.cpp.o.d"
  "/root/repo/tests/test_udp.cpp" "tests/CMakeFiles/infilter_tests.dir/test_udp.cpp.o" "gcc" "tests/CMakeFiles/infilter_tests.dir/test_udp.cpp.o.d"
  "/root/repo/tests/test_worm.cpp" "tests/CMakeFiles/infilter_tests.dir/test_worm.cpp.o" "gcc" "tests/CMakeFiles/infilter_tests.dir/test_worm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/app/CMakeFiles/infilter_app.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/infilter_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/infilter_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/infilter_core.dir/DependInfo.cmake"
  "/root/repo/build/src/flowtools/CMakeFiles/infilter_flowtools.dir/DependInfo.cmake"
  "/root/repo/build/src/nns/CMakeFiles/infilter_nns.dir/DependInfo.cmake"
  "/root/repo/build/src/alert/CMakeFiles/infilter_alert.dir/DependInfo.cmake"
  "/root/repo/build/src/dagflow/CMakeFiles/infilter_dagflow.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/infilter_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/netflow/CMakeFiles/infilter_netflow.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/infilter_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
